"""Table 3: TDC vs SOTA compression methods at a matched FLOPs budget.

Runs all seven methods (FPGM, TRP, Stable-CPD, Opt-TT, Std-TKD, MUSCO,
TDC) on the same pretrained slim model / synthetic data / budget and
prints the accuracy/FLOPs table.  The reproduced claim is TDC's
position at (or tied for) the top at an equal-or-higher reduction.
"""

import numpy as np

from repro.experiments import table3


def test_table3_accuracy(once):
    config = table3.Table3Config(
        model="resnet18_slim", image_size=10, n_train=256, n_test=128,
        num_classes=6, budget=0.6, pretrain_epochs=5, compress_epochs=3,
    )
    reports = once(lambda: table3.run_experiment(config))
    print()
    print(table3.run.__doc__)
    from repro.utils.tables import Table

    out = Table(
        ["method", "top-1 (%)", "drop (pp)", "FLOPs down"],
        title="Table 3 (slim ResNet-18, synthetic data, budget 60%; "
              "paper ResNet-18: TDC 69.70 @63% beats all comparators)",
    )
    out.add_row(["Original", reports[0].baseline_accuracy * 100, 0.0, "N/A"])
    for r in reports:
        out.add_row([r.method, r.accuracy * 100, r.accuracy_drop * 100,
                     f"{r.flops_reduction:.0%}"])
    print(out.render())

    by_method = {r.method: r for r in reports}
    tdc = by_method["TDC"]
    # All methods ran at a comparable reduction.
    for r in reports:
        assert r.flops_reduction > 0.3, r.method
    # TDC is at or near the top (within noise of the best comparator).
    best_rival = max(
        r.accuracy for r in reports if r.method != "TDC"
    )
    assert tdc.accuracy >= best_rival - 0.08
    # And clearly above the weakest methods on average.
    mean_rival = np.mean([r.accuracy for r in reports if r.method != "TDC"])
    assert tdc.accuracy >= mean_rival - 0.05
