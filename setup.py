"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-use-pep517 --no-build-isolation` uses this
legacy path; normal `pip install -e .` uses pyproject.toml.
"""

from setuptools import setup

setup()
