"""Tests for the extension features: TuckerLinear (Sec. 2.2) and
concurrent-convolution rank selection (the paper's future work)."""

import numpy as np
import pytest

from repro.codesign.concurrent import (
    ConcurrentGroup,
    concurrent_latency,
    inception_group,
    select_ranks_concurrent,
)
from repro.codesign.rank_selection import LayerShape
from repro.gpusim.device import A100
from repro.nn.gradcheck import check_module_gradients
from repro.nn.layers import Linear
from repro.nn.tucker_linear import TuckerLinear, _factor_pair


class TestFactorPair:
    def test_balanced(self):
        assert _factor_pair(12) == (3, 4)
        assert _factor_pair(16) == (4, 4)
        assert _factor_pair(7) == (1, 7)


class TestTuckerLinear:
    def test_forward_shape(self, rng):
        layer = TuckerLinear(12, 8, ranks=(2, 2, 2, 2), seed=0)
        y = layer.forward(rng.standard_normal((3, 12)))
        assert y.shape == (3, 8)

    def test_full_rank_equals_dense(self, rng):
        dense = Linear(12, 8, seed=0)
        tucker = TuckerLinear.from_linear(
            dense, ranks=(8, 8, 12, 12), n_iter=5
        )
        x = rng.standard_normal((4, 12))
        np.testing.assert_allclose(
            tucker.forward(x), dense.forward(x), atol=1e-8
        )

    def test_dense_reconstruction_matches_forward(self, rng):
        layer = TuckerLinear(12, 8, ranks=(2, 2, 3, 2), bias=False, seed=0)
        x = rng.standard_normal((2, 12))
        w = layer.to_dense_weight()
        np.testing.assert_allclose(layer.forward(x), x @ w.T, atol=1e-10)

    def test_gradients(self, rng):
        layer = TuckerLinear(8, 6, ranks=(2, 2, 2, 2), seed=0)
        check_module_gradients(layer, rng.standard_normal((2, 8)))

    def test_compression_ratio(self):
        layer = TuckerLinear(256, 256, ranks=(4, 4, 4, 4))
        assert layer.compression_ratio() > 10.0

    def test_rank_clipping(self):
        layer = TuckerLinear(6, 4, ranks=(100, 100, 100, 100))
        assert all(r <= d for r, d in zip(layer.ranks, (2, 2, 2, 3)))

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            TuckerLinear(12, 8, ranks=(2, 2, 2, 2), in_shape=(5, 2))
        with pytest.raises(ValueError):
            TuckerLinear(12, 8, ranks=(2, 2))

    def test_bias_transfer(self, rng):
        dense = Linear(12, 8, seed=0)
        dense.bias.data[...] = rng.standard_normal(8)
        tucker = TuckerLinear.from_linear(dense, ranks=(8, 8, 12, 12))
        np.testing.assert_array_equal(tucker.bias.data, dense.bias.data)

    def test_input_validation(self, rng):
        layer = TuckerLinear(12, 8, ranks=(2, 2, 2, 2))
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((2, 10)))


class TestConcurrentLatency:
    def test_critical_branch_bound(self):
        lat = concurrent_latency([1e-3, 1e-5], [1e6, 1e4], A100)
        assert lat == pytest.approx(1e-3)

    def test_aggregate_bound(self):
        """Many equal branches cannot beat total work at peak."""
        flops = [A100.peak_flops * 1e-4] * 16   # each 100us of peak work
        lats = [1.2e-4] * 16                    # each alone takes 120us
        lat = concurrent_latency(lats, flops, A100)
        assert lat >= 16 * 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            concurrent_latency([1.0], [1.0, 2.0], A100)
        with pytest.raises(ValueError):
            concurrent_latency([], [], A100)


class TestConcurrentSelection:
    @pytest.fixture(scope="class")
    def group(self):
        return inception_group(
            "mixed3a", in_channels=128, h=14, w=14,
            branch_out=[96, 128, 64], kernel_sizes=[3, 3, 3],
        )

    def test_group_builder(self, group):
        assert len(group.branches) == 3
        assert group.branches[0].c == 128

    def test_selection_meets_budget(self, group):
        decision = select_ranks_concurrent(group, A100, budget=0.5,
                                           rank_step=32)
        assert decision.achieved_reduction >= 0.5 - 1e-9
        assert len(decision.ranks) == 3

    def test_group_latency_bounded_by_branches(self, group):
        decision = select_ranks_concurrent(group, A100, budget=0.5,
                                           rank_step=32)
        assert decision.group_latency >= max(decision.branch_latencies) - 1e-12

    def test_laxer_budget_bigger_ranks(self, group):
        tight = select_ranks_concurrent(group, A100, budget=0.8, rank_step=32)
        loose = select_ranks_concurrent(group, A100, budget=0.3, rank_step=32)
        assert sum(d1 + d2 for d1, d2 in loose.ranks) >= sum(
            d1 + d2 for d1, d2 in tight.ranks
        )

    def test_impossible_budget_raises(self, group):
        with pytest.raises(ValueError):
            select_ranks_concurrent(group, A100, budget=0.999, rank_step=32)

    def test_invalid_budget(self, group):
        with pytest.raises(ValueError):
            select_ranks_concurrent(group, A100, budget=0.0)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ConcurrentGroup(name="x", branches=())

    def test_mismatched_builder_args(self):
        with pytest.raises(ValueError):
            inception_group("x", 64, 14, 14, [32, 64], [3])

    def test_deterministic(self, group):
        d1 = select_ranks_concurrent(group, A100, budget=0.5, rank_step=32)
        d2 = select_ranks_concurrent(group, A100, budget=0.5, rank_step=32)
        assert d1.ranks == d2.ranks
