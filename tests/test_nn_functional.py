"""Tests for the functional ops: im2col conv, pooling, softmax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


@st.composite
def conv_problems(draw):
    b = draw(st.integers(1, 3))
    c = draw(st.integers(1, 4))
    n = draw(st.integers(1, 4))
    h = draw(st.integers(3, 8))
    w = draw(st.integers(3, 8))
    k = draw(st.sampled_from([1, 3]))
    stride = draw(st.sampled_from([1, 2]))
    padding = draw(st.sampled_from([0, 1]))
    seed = draw(st.integers(0, 2**31 - 1))
    return b, c, n, h, w, k, stride, padding, seed


class TestConvForward:
    @given(conv_problems())
    @settings(max_examples=40, deadline=None)
    def test_im2col_matches_reference(self, prob):
        b, c, n, h, w, k, stride, padding, seed = prob
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((b, c, h, w))
        weight = rng.standard_normal((n, c, k, k))
        y1, _ = F.conv2d_forward(x, weight, stride=stride, padding=padding)
        y2 = F.conv2d_reference(x, weight, stride=stride, padding=padding)
        np.testing.assert_allclose(y1, y2, atol=1e-10)

    def test_output_shape(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((5, 3, 3, 3))
        y, _ = F.conv2d_forward(x, w, stride=2, padding=1)
        assert y.shape == (2, 5, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d_forward(
                rng.standard_normal((1, 3, 5, 5)),
                rng.standard_normal((2, 4, 3, 3)),
            )

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            F.conv_out_size(2, 5, 1, 0)

    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        y, _ = F.conv2d_forward(x, w, padding=1)
        np.testing.assert_allclose(y, x, atol=1e-12)


class TestConvBackward:
    def test_grad_shapes(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        y, cols = F.conv2d_forward(x, w, padding=1)
        gx, gw = F.conv2d_backward(np.ones_like(y), cols, w, x.shape, 1, 1)
        assert gx.shape == x.shape
        assert gw.shape == w.shape

    def test_grad_x_numeric(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        probe = rng.standard_normal((1, 3, 5, 5))

        def loss(xv):
            y, _ = F.conv2d_forward(xv, w, padding=1)
            return float(np.sum(y * probe))

        y, cols = F.conv2d_forward(x, w, padding=1)
        gx, _ = F.conv2d_backward(probe, cols, w, x.shape, 1, 1)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 4, 4)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            num = (loss(xp) - loss(xm)) / (2 * eps)
            assert gx[idx] == pytest.approx(num, abs=1e-5)

    def test_grad_w_numeric(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((2, 2, 3, 3))
        probe = rng.standard_normal((1, 2, 3, 3))

        def loss(wv):
            y, _ = F.conv2d_forward(x, wv, stride=1, padding=0)
            return float(np.sum(y * probe))

        y, cols = F.conv2d_forward(x, w)
        _, gw = F.conv2d_backward(probe, cols, w, x.shape)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (1, 1, 2, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            num = (loss(wp) - loss(wm)) / (2 * eps)
            assert gw[idx] == pytest.approx(num, abs=1e-5)

    def test_col2im_adjoint_property(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — exact adjointness."""
        x = rng.standard_normal((1, 2, 6, 6))
        cols = F.im2col(x, 3, 3, stride=2, padding=1)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        back = F.col2im(y, x.shape, 3, 3, stride=2, padding=1)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestPointwise:
    def test_matches_conv(self, rng):
        x = rng.standard_normal((2, 4, 5, 5))
        w2 = rng.standard_normal((6, 4))
        y1 = F.pointwise_conv_forward(x, w2)
        y2, _ = F.conv2d_forward(x, w2[:, :, None, None])
        np.testing.assert_allclose(y1, y2, atol=1e-12)

    def test_backward_numeric(self, rng):
        x = rng.standard_normal((1, 3, 4, 4))
        w = rng.standard_normal((2, 3))
        probe = rng.standard_normal((1, 2, 4, 4))
        gx, gw = F.pointwise_conv_backward(probe, x, w)
        eps = 1e-6
        xp = x.copy(); xp[0, 1, 2, 2] += eps
        xm = x.copy(); xm[0, 1, 2, 2] -= eps
        num = (np.sum(F.pointwise_conv_forward(xp, w) * probe)
               - np.sum(F.pointwise_conv_forward(xm, w) * probe)) / (2 * eps)
        assert gx[0, 1, 2, 2] == pytest.approx(num, abs=1e-6)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            F.pointwise_conv_forward(
                rng.standard_normal((1, 3, 4, 4)), rng.standard_normal((2, 4))
            )


class TestPooling:
    def test_maxpool_known(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, _ = F.maxpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_max(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, arg = F.maxpool2d_forward(x, 2, 2)
        g = F.maxpool2d_backward(np.ones_like(y), arg, x.shape, 2, 2)
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(g[0, 0], expected)

    def test_maxpool_padding_never_wins(self, rng):
        x = -np.abs(rng.standard_normal((1, 1, 4, 4))) - 1.0
        y, _ = F.maxpool2d_forward(x, 3, 2, padding=1)
        assert np.all(y < 0)  # padded zeros must not appear as maxima

    def test_avgpool_known(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y = F.avgpool2d_forward(x, 2, 2)
        np.testing.assert_allclose(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_backward_uniform(self):
        x = np.zeros((1, 1, 4, 4))
        g = F.avgpool2d_backward(np.ones((1, 1, 2, 2)), x.shape, 2, 2)
        np.testing.assert_allclose(g, np.full((1, 1, 4, 4), 0.25))

    def test_overlapping_maxpool(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        y, _ = F.maxpool2d_forward(x, 3, 2, padding=1)
        assert y.shape == (1, 2, 3, 3)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_avgpool_grad_sum_preserved(self, seed):
        rng = np.random.default_rng(seed)
        gy = rng.standard_normal((1, 2, 2, 2))
        gx = F.avgpool2d_backward(gy, (1, 2, 4, 4), 2, 2)
        assert float(gx.sum()) == pytest.approx(float(gy.sum()), rel=1e-10)


class TestSoftmax:
    def test_log_softmax_normalizes(self, rng):
        logits = rng.standard_normal((4, 7))
        p = np.exp(F.log_softmax(logits))
        np.testing.assert_allclose(p.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_stability(self):
        logits = np.array([[1e4, 0.0, -1e4]])
        p = F.softmax(logits)
        assert np.all(np.isfinite(p))
        assert p[0, 0] == pytest.approx(1.0)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            F.softmax(logits), F.softmax(logits + 100.0), atol=1e-12
        )

    def test_relu(self):
        np.testing.assert_array_equal(
            F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )
