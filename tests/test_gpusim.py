"""Tests for the GPU simulator: devices, occupancy, latency engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import A100, RTX2080TI, get_device
from repro.gpusim.engine import KernelLaunch, simulate_kernel, simulate_sequence
from repro.gpusim.occupancy import compute_occupancy


class TestDevices:
    def test_a100_peak(self):
        # 108 SMs x 64 lanes x 2 x 1.41 GHz ~ 19.5 TFLOP/s
        assert A100.peak_flops == pytest.approx(19.5e12, rel=0.01)

    def test_2080ti_peak(self):
        assert RTX2080TI.peak_flops == pytest.approx(13.45e12, rel=0.01)

    def test_total_threads(self):
        assert A100.total_threads == 108 * 2048
        assert RTX2080TI.total_threads == 68 * 1024

    def test_lookup(self):
        assert get_device("a100") is A100
        assert get_device("2080Ti") is RTX2080TI
        with pytest.raises(KeyError):
            get_device("h100")

    def test_model_top_fraction_paper_values(self):
        assert A100.model_top_fraction == 0.05
        assert RTX2080TI.model_top_fraction == 0.15


class TestOccupancy:
    def test_thread_limit(self):
        occ = compute_occupancy(A100, threads_per_block=1024, regs_per_thread=0)
        assert occ.blocks_per_sm == 2
        assert occ.limiting_factor == "threads"

    def test_block_limit(self):
        occ = compute_occupancy(A100, threads_per_block=32, regs_per_thread=0)
        assert occ.blocks_per_sm == 32
        assert occ.limiting_factor == "blocks"

    def test_smem_limit(self):
        occ = compute_occupancy(
            A100, threads_per_block=64, smem_per_block=100 * 1024,
            regs_per_thread=0,
        )
        assert occ.blocks_per_sm == 1
        assert occ.limiting_factor == "shared_memory"

    def test_register_limit(self):
        occ = compute_occupancy(A100, threads_per_block=256, regs_per_thread=255)
        assert occ.limiting_factor == "registers"
        assert occ.blocks_per_sm == 65536 // (255 * 256)

    def test_warp_quantization(self):
        occ33 = compute_occupancy(A100, threads_per_block=33, regs_per_thread=0)
        occ64 = compute_occupancy(A100, threads_per_block=64, regs_per_thread=0)
        assert occ33.blocks_per_sm == occ64.blocks_per_sm

    def test_oversized_block_raises(self):
        with pytest.raises(ValueError):
            compute_occupancy(A100, threads_per_block=2048)

    def test_oversized_smem_raises(self):
        with pytest.raises(ValueError):
            compute_occupancy(A100, threads_per_block=32,
                              smem_per_block=200 * 1024)

    def test_fraction(self):
        occ = compute_occupancy(A100, threads_per_block=1024, regs_per_thread=0)
        assert occ.fraction(A100) == pytest.approx(1.0)


def make_launch(**kw):
    base = dict(
        n_blocks=108, threads_per_block=256, flops_per_block=1e6,
        read_bytes=1e6, write_bytes=1e5, regs_per_thread=32,
    )
    base.update(kw)
    return KernelLaunch(**base)


class TestEngine:
    def test_breakdown_components_sum(self):
        lb = simulate_kernel(A100, make_launch())
        assert lb.total == pytest.approx(
            max(lb.compute, lb.memory) + lb.sync + lb.atomic + lb.launch
        )

    def test_launch_overhead_toggle(self):
        with_l = simulate_kernel(A100, make_launch()).total
        without = simulate_kernel(
            A100, make_launch(), include_launch_overhead=False
        ).total
        assert with_l - without == pytest.approx(A100.kernel_launch_overhead)

    def test_more_flops_more_time(self):
        t1 = simulate_kernel(A100, make_launch(flops_per_block=1e6)).compute
        t2 = simulate_kernel(A100, make_launch(flops_per_block=4e6)).compute
        assert t2 > t1

    def test_wave_quantization(self):
        few = simulate_kernel(A100, make_launch(n_blocks=108))
        # 8 blocks/SM resident for 256-thread blocks -> capacity 864.
        many = simulate_kernel(A100, make_launch(n_blocks=865))
        assert few.waves == 1
        assert many.waves == 2

    def test_saturated_throughput_matches_peak(self):
        """A massively parallel FMA-only kernel should hit device peak."""
        flops_per_block = 1e8
        n_blocks = 8 * A100.n_sms
        lb = simulate_kernel(
            A100,
            make_launch(
                n_blocks=n_blocks, flops_per_block=flops_per_block,
                read_bytes=0, write_bytes=0, threads_per_block=256,
            ),
        )
        achieved = n_blocks * flops_per_block / lb.compute
        assert achieved == pytest.approx(A100.peak_flops, rel=0.01)

    def test_memory_bound_kernel(self):
        lb = simulate_kernel(
            A100, make_launch(flops_per_block=1.0, read_bytes=2e9)
        )
        assert lb.total >= 2e9 / A100.dram_bandwidth

    def test_atomic_conflict_penalty(self):
        base = simulate_kernel(
            A100, make_launch(atomic_bytes=1e7, atomic_conflict_degree=1)
        ).atomic
        contended = simulate_kernel(
            A100, make_launch(atomic_bytes=1e7, atomic_conflict_degree=8)
        ).atomic
        assert contended > base

    def test_sync_cost_scales(self):
        s1 = simulate_kernel(A100, make_launch(syncs_per_block=1)).sync
        s2 = simulate_kernel(A100, make_launch(syncs_per_block=100)).sync
        assert s2 > s1

    def test_stalls_hidden_by_occupancy(self):
        """The same stall count hurts less when many warps are resident."""
        low = simulate_kernel(
            A100,
            make_launch(n_blocks=8, threads_per_block=32,
                        global_stalls_per_block=64),
        ).sync
        high = simulate_kernel(
            A100,
            make_launch(n_blocks=3456, threads_per_block=256,
                        global_stalls_per_block=64),
        ).sync
        assert high < low

    def test_block_must_fit(self):
        with pytest.raises(ValueError):
            simulate_kernel(
                A100,
                make_launch(threads_per_block=1024, regs_per_thread=255),
            )

    def test_validation_rejects_negative(self):
        with pytest.raises(ValueError):
            simulate_kernel(A100, make_launch(read_bytes=-1.0))
        with pytest.raises(ValueError):
            simulate_kernel(A100, make_launch(atomic_conflict_degree=0))

    def test_sequence_sums(self):
        launches = [make_launch(), make_launch(flops_per_block=2e6)]
        total = simulate_sequence(A100, launches)
        parts = sum(simulate_kernel(A100, l).total for l in launches)
        assert total == pytest.approx(parts)

    @given(
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=32, max_value=1024),
    )
    @settings(max_examples=30, deadline=None)
    def test_latency_always_positive_and_finite(self, n_blocks, threads):
        lb = simulate_kernel(
            A100,
            make_launch(n_blocks=n_blocks, threads_per_block=threads,
                        regs_per_thread=16),
        )
        assert lb.total > 0
        assert np.isfinite(lb.total)

    @given(st.floats(min_value=1e3, max_value=1e9))
    @settings(max_examples=20, deadline=None)
    def test_compute_monotone_in_flops(self, flops):
        a = simulate_kernel(A100, make_launch(flops_per_block=flops)).compute
        b = simulate_kernel(A100, make_launch(flops_per_block=flops * 2)).compute
        assert b >= a

    def test_slower_device_slower(self):
        # Use a grid large enough that wave quantization is negligible
        # on both devices; A100's higher peak must then win.
        launch = make_launch(n_blocks=50000, flops_per_block=1e7)
        assert (
            simulate_kernel(RTX2080TI, launch).compute
            > simulate_kernel(A100, launch).compute
        )
