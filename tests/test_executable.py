"""Compile/execute split: numeric equivalence and the no-allocation
hot-path contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import backend_names, get_backend
from repro.codesign.pipeline import decompose_for_device
from repro.gpusim.device import A100
from repro.inference import compile_model, compile_plan, plan_model
from repro.inference.executable import BufferArena, CompiledTuckerConv2d
from repro.inference.plan import plan_tucker_model
from repro.kernels.base import reference_conv
from repro.kernels.cudnn import CuDNNWinogradKernel
from repro.models.arch_specs import LayerSpec, ModelSpec
from repro.models.introspection import trace_layer_sites
from repro.models.registry import build_model
from repro.nn.module import Module
from repro.nn.tucker_conv import TuckerConv2d

IMAGE_HW = (8, 8)
MODELS = ("resnet_tiny", "vgg_tiny")

def make_decomposed(name: str) -> Module:
    """A trainable preset with hardware-aware Tucker decomposition."""
    model = build_model(name, seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=0.5, rank_step=2)
    return model.eval()


@pytest.fixture(scope="module", params=MODELS)
def decomposed(request):
    return request.param, make_decomposed(request.param)


# ---------------------------------------------------------------------------
# Numeric equivalence: Executable.run == Module.forward, every backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", list(backend_names()) + ["auto"])
def test_executable_matches_module_forward(decomposed, backend):
    name, model = decomposed
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 3) + IMAGE_HW)
    ref = model.forward(x)
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend=backend,
        max_batch=2, model_name=name,
    )
    y = exe.run(x)
    np.testing.assert_allclose(y, ref, atol=1e-5, rtol=1e-5)
    # Second call through the same arena must reproduce exactly.
    np.testing.assert_array_equal(exe.run(x), y)


def test_executable_accepts_single_sample(decomposed):
    _, model = decomposed
    rng = np.random.default_rng(1)
    x = rng.standard_normal((3,) + IMAGE_HW)
    exe = compile_model(model, A100, image_hw=IMAGE_HW, max_batch=1)
    ref = model.forward(x[None])
    np.testing.assert_allclose(exe.run(x), ref, atol=1e-8)


def test_executable_partial_batches(decomposed):
    """Arena views must slice correctly for every batch <= max_batch."""
    _, model = decomposed
    rng = np.random.default_rng(2)
    exe = compile_model(model, A100, image_hw=IMAGE_HW, max_batch=3)
    for b in (1, 2, 3):
        x = rng.standard_normal((b, 3) + IMAGE_HW)
        np.testing.assert_allclose(
            exe.run(x), model.forward(x), atol=1e-8
        )


def test_executable_rejects_oversized_batch(decomposed):
    _, model = decomposed
    exe = compile_model(model, A100, image_hw=IMAGE_HW, max_batch=2)
    x = np.zeros((3, 3) + IMAGE_HW)
    with pytest.raises(ValueError, match="max_batch"):
        exe.run(x)


def test_executable_isolated_from_model_mutation():
    """Compiled weights are exports: training afterwards cannot leak."""
    model = make_decomposed("resnet_tiny")
    x = np.random.default_rng(3).standard_normal((1, 3) + IMAGE_HW)
    exe = compile_model(model, A100, image_hw=IMAGE_HW)
    before = exe.run(x).copy()
    for p in model.parameters():
        p.data += 1.0
    np.testing.assert_array_equal(exe.run(x), before)


def test_compile_respects_fixed_backend_dispatch():
    model = make_decomposed("resnet_tiny")
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend="cudnn-winograd"
    )
    tucker_sites = [
        s for s in exe.sites() if isinstance(s, CompiledTuckerConv2d)
    ]
    assert tucker_sites, "expected at least one compiled Tucker site"
    for site in tucker_sites:
        assert site.backend == "cudnn-winograd"
        assert isinstance(site.kernel, CuDNNWinogradKernel)
    assert exe.backend_counts() == {"cudnn-winograd": len(tucker_sites)}


def test_compiled_sites_are_inference_only():
    model = make_decomposed("resnet_tiny")
    exe = compile_model(model, A100, image_hw=IMAGE_HW)
    with pytest.raises(RuntimeError, match="inference-only"):
        exe.sites()[0].backward(np.zeros(1))


def test_executable_edge_geometries():
    """Even kernels, padded 1x1, stride 3 — the same-conv wrapper's
    extraction arithmetic must hold for every geometry."""
    from repro.nn.conv import Conv2d
    from repro.nn.module import Sequential

    model = Sequential(
        Conv2d(3, 8, 4, stride=2, padding=1, bias=True, seed=1),
        Conv2d(8, 6, 1, stride=2, padding=1, bias=True, seed=2),
        TuckerConv2d(6, 10, 3, rank_in=4, rank_out=5, stride=3,
                     padding=2, bias=True, seed=3),
    ).eval()
    x = np.random.default_rng(7).standard_normal((2, 3, 11, 11))
    ref = model.forward(x)
    exe = compile_model(
        model, A100, image_hw=(11, 11), core_backend="auto", max_batch=2
    )
    np.testing.assert_allclose(exe.run(x), ref, atol=1e-10)


def test_executable_strided_tucker_core():
    """A decomposed stride-2 conv runs its core through the dispatched
    kernel at the padded extent and subsamples exactly."""
    from repro.compression.baselines import decompose_model

    model = build_model("resnet_tiny", seed=0)
    decompose_model(model, {"blocks.layer1.conv1": (6, 6)})
    model.eval()
    x = np.random.default_rng(8).standard_normal((2, 3, 9, 9))
    ref = model.forward(x)
    exe = compile_model(
        model, A100, image_hw=(9, 9), core_backend="tdc-model", max_batch=2
    )
    np.testing.assert_allclose(exe.run(x), ref, atol=1e-10)
    assert exe.backend_counts() == {"tdc-model": 1}


# ---------------------------------------------------------------------------
# No-allocation hot path + arena reuse
# ---------------------------------------------------------------------------

def test_wino_transforms_cached_per_dtype():
    """Regression (hot-path-alloc): run_into used to cast the float64
    transform masters on every call — three fresh arrays per site per
    request on float32 arenas.  The cast is now memoized per dtype."""
    from repro.kernels.cudnn import WINO_BT, wino_transforms

    f32 = wino_transforms(np.float32)
    assert wino_transforms(np.float32) is f32       # cached, no re-cast
    assert all(m.dtype == np.float32 for m in f32)
    f64 = wino_transforms(np.float64)
    assert f64[0] is not f32[0]
    np.testing.assert_array_equal(f64[0], WINO_BT)  # float64 passthrough

    # Numerics through the cached transforms still match the reference.
    shape_c, shape_n, hw = 3, 4, 8
    rng = np.random.default_rng(11)
    x = rng.standard_normal((shape_c, hw, hw)).astype(np.float32)
    w = rng.standard_normal((shape_n, shape_c, 3, 3)).astype(np.float32)
    kernel = CuDNNWinogradKernel()
    np.testing.assert_allclose(
        kernel.run(x, w), reference_conv(x, w), atol=1e-4
    )


@pytest.mark.parametrize("backend", ["auto", "tdc-model", "cudnn"])
def test_hot_path_allocates_nothing(backend, count_allocations):
    model = make_decomposed("resnet_tiny")
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend=backend, max_batch=2
    )
    x = np.random.default_rng(4).standard_normal((2, 3) + IMAGE_HW)
    exe.run(x)  # warm (first touch)
    assert count_allocations(lambda: exe.run(x)) == {}


def test_arena_buffers_are_reused_across_calls(decomposed):
    _, model = decomposed
    exe = compile_model(model, A100, image_hw=IMAGE_HW, max_batch=2)
    x = np.random.default_rng(5).standard_normal((2, 3) + IMAGE_HW)
    exe.run(x)
    ids_before = {n: id(exe.arena.get(n)) for n in exe.arena.names()}
    site_outs = [id(s.out) for s in exe.sites()]
    exe.run(x)
    exe.run(x)
    assert ids_before == {n: id(exe.arena.get(n)) for n in exe.arena.names()}
    assert site_outs == [id(s.out) for s in exe.sites()]
    assert exe.requests_served == 3


def test_arena_rejects_duplicate_names():
    arena = BufferArena()
    arena.allocate("a", (2, 2))
    with pytest.raises(ValueError, match="already allocated"):
        arena.allocate("a", (2, 2))
    assert arena.n_buffers == 1
    # Default arena dtype is float32, the device execution dtype.
    assert arena.nbytes == 4 * 4


# ---------------------------------------------------------------------------
# reference_conv dtype preservation (satellite)
# ---------------------------------------------------------------------------

def test_reference_conv_preserves_float32():
    rng = np.random.default_rng(0)
    x64 = rng.standard_normal((4, 6, 5))
    w64 = rng.standard_normal((3, 4, 3, 3))
    y64 = reference_conv(x64, w64)
    assert y64.dtype == np.float64
    y32 = reference_conv(x64.astype(np.float32), w64.astype(np.float32))
    assert y32.dtype == np.float32
    np.testing.assert_allclose(y32, y64, atol=1e-4)


def test_reference_conv_promotes_non_float():
    x = np.ones((2, 4, 4), dtype=np.int64)
    w = np.ones((2, 2, 3, 3), dtype=np.int64)
    assert reference_conv(x, w).dtype == np.float64


# ---------------------------------------------------------------------------
# Fail-fast (satellite): empty-core plans and unmatched compiles
# ---------------------------------------------------------------------------

def _pointwise_only_spec() -> ModelSpec:
    spec = ModelSpec("pointwise_only")
    spec.layers.append(LayerSpec("pw", "conv", 64, 64, 8, 8, 1, 1, 0))
    spec.layers.append(LayerSpec("fc", "fc", 64, 10))
    return spec


def test_plan_tucker_model_rejects_undecomposable_spec():
    from repro.codesign.rank_selection import RankPlan

    empty_plan = RankPlan(
        decisions=[], budget=0.5, theta=0.15, device_name="A100"
    )
    with pytest.raises(ValueError, match="no decomposable conv"):
        plan_tucker_model(_pointwise_only_spec(), empty_plan, A100)


def test_plan_model_rejects_convless_model():
    from repro.nn.layers import Flatten, Linear
    from repro.nn.module import Sequential

    model = Sequential(Flatten(), Linear(3 * 8 * 8, 4))
    with pytest.raises(ValueError, match="no conv layers"):
        plan_model(model, A100, IMAGE_HW)


def test_compile_plan_rejects_mismatched_plan():
    resnet = make_decomposed("resnet_tiny")
    vgg = make_decomposed("vgg_tiny")
    plan = plan_model(resnet, A100, IMAGE_HW)
    with pytest.raises(ValueError, match="do not bind"):
        compile_plan(plan, vgg, A100, image_hw=IMAGE_HW)


def test_compile_plan_rejects_uncovered_sites():
    model = make_decomposed("resnet_tiny")
    plan = plan_model(model, A100, IMAGE_HW)
    plan.kernels = [k for k in plan.kernels if k.kind != "core"]
    with pytest.raises(ValueError, match="does not cover"):
        compile_plan(plan, model, A100, image_hw=IMAGE_HW)


def test_compile_model_bad_max_batch():
    model = make_decomposed("resnet_tiny")
    with pytest.raises(ValueError, match="max_batch"):
        compile_model(model, A100, image_hw=IMAGE_HW, max_batch=0)


# ---------------------------------------------------------------------------
# plan_model structure
# ---------------------------------------------------------------------------

def test_plan_model_names_round_trip_to_modules(decomposed):
    name, model = decomposed
    plan = plan_model(model, A100, IMAGE_HW, model_name=name)
    sites = {s.name: s for s in trace_layer_sites(model, IMAGE_HW)}
    assert plan.model_name == name
    for k in plan.kernels:
        if k.kind == "core":
            site = sites[k.layer[: -len(".core")]]
            assert isinstance(site.module, TuckerConv2d)
            assert k.backend in backend_names()
            assert k.latency > 0
        elif k.layer.endswith((".pw1", ".pw2")):
            assert isinstance(sites[k.layer[:-4]].module, TuckerConv2d)
        else:
            assert k.layer in sites
    n_tucker = sum(1 for s in sites.values() if s.is_tucker)
    assert sum(1 for k in plan.kernels if k.kind == "core") == n_tucker


def test_backend_kernel_factory_all_registered():
    """Every builtin backend materializes a runnable kernel matching
    its reference conv."""
    from repro.kernels.base import ConvShape

    rng = np.random.default_rng(6)
    shape = ConvShape(c=4, n=4, h=6, w=6, r=3, s=3)
    x = rng.standard_normal((4, 6, 6))
    w = rng.standard_normal((4, 4, 3, 3))
    ref = reference_conv(x, w)
    for name in backend_names():
        backend = get_backend(name)
        if not backend.supports(shape, A100):
            continue
        kernel = backend.kernel(shape, A100)
        np.testing.assert_allclose(kernel.run(x, w), ref, atol=1e-6)
        out = np.empty_like(ref)
        scratch = kernel.allocate_scratch(shape)
        np.testing.assert_allclose(
            kernel.run_into(x, w, out, scratch), ref, atol=1e-6
        )
