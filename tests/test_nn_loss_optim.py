"""Tests for losses, optimizers, and LR schedulers."""

import numpy as np
import pytest

from repro.nn.loss import CrossEntropyLoss, MSELoss, accuracy, topk_accuracy
from repro.nn.module import Parameter
from repro.nn.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    MultiStepLR,
    StepLR,
)


class TestCrossEntropy:
    def test_uniform_logits_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        assert loss(logits, labels) == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = logits[1, 2] = 100.0
        assert loss(logits, np.array([1, 2])) < 1e-6

    def test_gradient_matches_numeric(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.standard_normal((3, 5))
        labels = np.array([0, 2, 4])
        loss(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for idx in [(0, 0), (1, 2), (2, 4)]:
            lp = logits.copy(); lp[idx] += eps
            lm = logits.copy(); lm[idx] -= eps
            num = (CrossEntropyLoss()(lp, labels) - CrossEntropyLoss()(lm, labels)) / (2 * eps)
            assert grad[idx] == pytest.approx(num, abs=1e-6)

    def test_gradient_rows_sum_zero(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.standard_normal((4, 6))
        loss(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_label_smoothing_raises_loss_floor(self, rng):
        logits = np.full((1, 4), -100.0); logits[0, 0] = 100.0
        labels = np.array([0])
        plain = CrossEntropyLoss()(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.2)(logits, labels)
        assert smoothed > plain

    def test_label_range_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0, 3]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3)), np.array([0]))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss = MSELoss()
        pred = rng.standard_normal((3, 2))
        target = rng.standard_normal((3, 2))
        loss(pred, target)
        np.testing.assert_allclose(
            loss.backward(), 2 * (pred - target) / pred.size, atol=1e-12
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(3), np.zeros(4))


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert topk_accuracy(logits, np.array([1]), k=2) == 1.0
        assert topk_accuracy(logits, np.array([3]), k=2) == 0.0


def quadratic_params(rng, n=4):
    """Parameters minimizing ||x - target||^2."""
    p = Parameter(rng.standard_normal(n))
    target = rng.standard_normal(n)
    return p, target


def quad_step(p, target):
    p.zero_grad()
    p.grad[...] = 2 * (p.data - target)


class TestSGD:
    def test_converges_on_quadratic(self, rng):
        p, target = quadratic_params(rng)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            quad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_faster_than_plain(self, rng):
        p1, target = quadratic_params(rng)
        p2 = Parameter(p1.data.copy())
        plain = SGD([p1], lr=0.01)
        mom = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(50):
            quad_step(p1, target); plain.step()
            quad_step(p2, target); mom.step()
        assert np.linalg.norm(p2.data - target) < np.linalg.norm(p1.data - target)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.zero_grad()
        opt.step()
        assert np.all(p.data < 1.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        p, target = quadratic_params(rng)
        opt = Adam([p], lr=0.05)
        for _ in range(500):
            quad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        p.grad[...] = 1.0
        opt.step()
        # First Adam step magnitude ~ lr regardless of beta.
        assert abs(p.data[0] + 0.1) < 1e-6

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_multistep_lr(self):
        opt = self._opt()
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_monotone_decrease(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=8)
        prev = opt.lr
        for _ in range(8):
            sched.step()
            assert opt.lr <= prev + 1e-12
            prev = opt.lr

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
