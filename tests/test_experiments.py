"""Integration tests: every experiment harness runs and reproduces the
paper's qualitative claims on scaled-down configurations."""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    budget_sweep,
    e2e,
    fig4,
    layerwise,
    oracle_gap,
    table2,
    table3,
)
from repro.experiments.common import MODEL_BUDGETS, PAPER_E2E_SPEEDUPS
from repro.gpusim.device import A100, RTX2080TI


class TestFig4:
    def test_curves_monotone_nondecreasing(self):
        for hw in (28, 14):
            pts = fig4.staircase_curve(hw, hw, device=RTX2080TI)
            lats = [p.latency for p in pts]
            for a, b in zip(lats, lats[1:]):
                assert b >= a - 1e-9  # monotone staircase (Fig. 4)

    def test_smaller_map_faster(self):
        p28 = fig4.staircase_curve(28, 28, n_values=[64], device=RTX2080TI)
        p14 = fig4.staircase_curve(14, 14, n_values=[64], device=RTX2080TI)
        assert p14[0].latency < p28[0].latency

    def test_table_renders(self):
        t = fig4.run()
        assert len(t) == 8
        assert "Figure 4" in t.render()

    def test_plateau_counter(self):
        pts = fig4.staircase_curve(14, 14, device=RTX2080TI)
        assert 1 <= fig4.plateau_count(pts) <= len(pts)


SMALL_SHAPES = [
    (32, 32, 28, 28), (64, 32, 28, 28), (32, 32, 14, 14),
    (64, 32, 14, 14), (96, 64, 7, 7), (192, 160, 7, 7),
]


class TestLayerwise:
    @pytest.fixture(scope="class")
    def rows_a100(self):
        return layerwise.run_rows(A100, shapes=SMALL_SHAPES)

    def test_tdc_oracle_wins_small_shapes(self, rows_a100):
        wins = sum(1 for r in rows_a100 if r.tdc_wins())
        assert wins >= len(rows_a100) - 1

    def test_average_speedups_over_one(self, rows_a100):
        speedups = layerwise.average_speedups(rows_a100)
        for rival, (oracle, model) in speedups.items():
            assert oracle > 1.0, f"TDC-ORACLE loses to {rival} on average"

    def test_oracle_never_slower_than_model(self, rows_a100):
        for r in rows_a100:
            assert r.tdc_oracle <= r.tdc_model + 1e-12

    def test_table_renders(self):
        t = layerwise.run(A100)
        assert len(t) == 18

    def test_summary_table(self):
        t = layerwise.summary(RTX2080TI)
        assert len(t) == 4


class TestOracleGap:
    def test_gap_in_paper_band(self):
        rows = oracle_gap.run_rows(A100, shapes=SMALL_SHAPES)
        gap = oracle_gap.mean_gap(rows)
        assert 1.0 <= gap < 2.6  # paper ~1.25; simulator lands <2.6

    def test_model_faster_than_tvm_on_average(self):
        rows = oracle_gap.run_rows(RTX2080TI, shapes=SMALL_SHAPES)
        assert oracle_gap.mean_tvm_advantage(rows) > 1.0

    def test_table_has_mean_row(self):
        t = oracle_gap.run(RTX2080TI)
        assert t.to_dicts()[-1]["shape (C,N,H,W)"] == "MEAN"


class TestE2E:
    @pytest.fixture(scope="class")
    def resnet18_result(self):
        return e2e.run_models(A100, models=["resnet18"])["resnet18"]

    def test_bar_ordering(self, resnet18_result):
        res = resnet18_result
        assert res.original > res.tucker_tdc_oracle
        assert res.tucker_cudnn > res.tucker_tdc_oracle
        assert res.tucker_tvm >= res.tucker_tdc_oracle

    def test_speedups_in_band(self, resnet18_result):
        """Reproduced factors within a 2.5x band of the paper's."""
        paper = PAPER_E2E_SPEEDUPS[("A100", "resnet18")]
        got = (
            resnet18_result.speedup_over_original("tdc-oracle"),
            resnet18_result.speedup_over_tucker_cudnn("tdc-oracle"),
            resnet18_result.speedup_over_tucker_tvm("tdc-oracle"),
        )
        for g, p in zip(got, paper):
            assert g > 1.0
            assert g / p < 2.5 and p / g < 2.5

    def test_budgets_table_complete(self):
        assert set(MODEL_BUDGETS) == {
            "resnet18", "resnet50", "vgg16", "densenet121", "densenet201",
        }

    def test_table_renders(self):
        t = e2e.run(A100, models=["resnet18"])
        assert len(t) == 1


class TestAblations:
    def test_crsn_table(self):
        t = ablations.crsn_layout_ablation(A100, shapes=SMALL_SHAPES[:3])
        assert t.to_dicts()[-1]["shape"] == "MEAN"

    def test_theta_rule_table(self):
        t = ablations.theta_rule_ablation(A100, model="resnet18", budget=0.65)
        rows = t.to_dicts()
        assert len(rows) == 2
        # θ=0 decomposes at least as many layers as θ=0.15.
        n0 = int(rows[0]["decomposed layers"].split("/")[0])
        n15 = int(rows[1]["decomposed layers"].split("/")[0])
        assert n0 >= n15

    def test_top_fraction_table(self):
        t = ablations.top_fraction_ablation(
            A100, fractions=(0.05, 1.0), shapes=SMALL_SHAPES[:4]
        )
        assert len(t) == 2

    def test_c_split_helps_on_small_shapes(self):
        t = ablations.c_split_ablation(A100, shapes=SMALL_SHAPES)
        mean_row = t.to_dicts()[-1]
        assert float(mean_row["penalty"].rstrip("x")) > 1.0


@pytest.mark.slow
class TestTrainingExperiments:
    """Scaled-down versions of the accuracy experiments (minutes)."""

    def test_table2_ordering(self):
        config = table2.Table2Config(
            model="resnet_tiny", image_size=8, n_train=128, n_test=64,
            num_classes=4, pretrain_epochs=4, compress_epochs=3,
        )
        result = table2.run_experiment(config)
        # The paper's Table 2 claim: ADMM recovers more accuracy than
        # direct compression at the same FLOPs reduction.
        assert result.admm_accuracy >= result.direct_compress_accuracy - 0.05
        assert result.flops_reduction > 0.5
        assert result.baseline_accuracy > 0.3

    def test_budget_sweep_runs(self):
        config = budget_sweep.BudgetSweepConfig(
            model="resnet_tiny", image_size=8, n_train=96, n_test=48,
            num_classes=4, budgets=(0.5, 0.8), pretrain_epochs=3,
            compress_epochs=2,
        )
        points = budget_sweep.run_experiment(config)
        assert len(points) == 2
        assert points[1].achieved_reduction > points[0].achieved_reduction

    def test_table3_subset(self):
        from repro.compression.comparators import (
            StdTKDComparator,
            TDCComparator,
        )

        config = table3.Table3Config(
            model="resnet_tiny", image_size=8, n_train=96, n_test=48,
            num_classes=4, budget=0.5, pretrain_epochs=3, compress_epochs=2,
        )
        reports = table3.run_experiment(
            config, comparators=[StdTKDComparator, TDCComparator]
        )
        assert len(reports) == 2
        for r in reports:
            assert 0.0 <= r.accuracy <= 1.0
            assert r.flops_reduction > 0.3
