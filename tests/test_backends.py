"""Tests for the kernel-backend registry and per-layer auto dispatch."""

import pytest

from repro.backends import (
    AUTO_BACKEND,
    CoreDispatch,
    KernelBackend,
    PAPER_CORE_BACKENDS,
    auto_dispatch,
    backend_names,
    dispatch_core,
    get_backend,
    known_backend_names,
    register_backend,
    registered_backends,
    temporary_backend,
    unregister_backend,
    validate_backend,
)
from repro.codesign.pipeline import layer_shapes_from_spec
from repro.codesign.rank_selection import select_ranks
from repro.gpusim.device import A100
from repro.inference.engine import E2EResult, estimate_e2e
from repro.inference.plan import plan_tucker_model
from repro.kernels.base import ConvShape
from repro.models.arch_specs import get_model_spec
from repro.planning.warmup import warm_backends

SHAPE = ConvShape(c=32, n=32, h=14, w=14)


@pytest.fixture(scope="module")
def resnet18_setup():
    spec = get_model_spec("resnet18")
    plan = select_ranks(layer_shapes_from_spec(spec), A100, budget=0.65)
    return spec, plan


class _ConstantBackend(KernelBackend):
    """Test double: fixed latency, optional shape gate."""

    def __init__(self, name, latency=1.0, supported=True):
        self.name = name
        self.description = f"constant {latency}s"
        self._latency = latency
        self._supported = supported

    def supports(self, shape, device):
        return self._supported

    def core_latency(self, shape, device):
        return self._latency

    def tiling(self, shape, device):
        return "constant"


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        for expected in PAPER_CORE_BACKENDS:
            assert expected in names
        assert "cudnn-winograd" in names
        assert "cudnn-fft" in names
        assert len(set(names)) == len(names)

    def test_known_names_include_auto(self):
        assert AUTO_BACKEND in known_backend_names()
        assert AUTO_BACKEND not in backend_names()

    def test_get_backend_unknown_lists_known_names(self):
        with pytest.raises(ValueError) as exc:
            get_backend("cutlass")
        for name in backend_names():
            assert name in str(exc.value)

    def test_validate_accepts_auto(self):
        assert validate_backend(AUTO_BACKEND) == AUTO_BACKEND
        with pytest.raises(ValueError):
            validate_backend("nonsense")

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError):
            register_backend(_ConstantBackend("cudnn"))

    def test_register_auto_name_raises(self):
        with pytest.raises(ValueError):
            register_backend(_ConstantBackend(AUTO_BACKEND))

    def test_register_unnamed_raises(self):
        with pytest.raises(ValueError):
            register_backend(_ConstantBackend(""))

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError):
            unregister_backend("never-registered")

    def test_temporary_backend_round_trip(self):
        with temporary_backend(_ConstantBackend("tmp-backend")):
            assert "tmp-backend" in backend_names()
            assert get_backend("tmp-backend").core_latency(SHAPE, A100) == 1.0
        assert "tmp-backend" not in backend_names()

    def test_registration_order_preserved(self):
        assert [b.name for b in registered_backends()] == list(backend_names())


class TestDispatch:
    def test_fixed_dispatch_records_backend(self):
        d = dispatch_core(SHAPE, A100, "tdc-oracle")
        assert isinstance(d, CoreDispatch)
        assert d.backend == "tdc-oracle"
        assert d.latency > 0
        assert d.tiling is not None and "TH=" in d.tiling

    def test_auto_matches_min_over_registered(self):
        best = min(
            (
                b.core_latency(SHAPE, A100)
                for b in registered_backends()
                if b.supports(SHAPE, A100)
            ),
        )
        d = auto_dispatch(SHAPE, A100)
        assert d.latency == pytest.approx(best)
        assert d.backend in backend_names()

    def test_auto_prefers_new_faster_backend(self):
        fast = _ConstantBackend("fast-test", latency=1e-12)
        with temporary_backend(fast):
            d = dispatch_core(SHAPE, A100, AUTO_BACKEND)
            assert d.backend == "fast-test"
            assert d.tiling == "constant"

    def test_auto_skips_unsupported(self):
        slow_unsupported = _ConstantBackend(
            "unsupported-test", latency=1e-12, supported=False
        )
        with temporary_backend(slow_unsupported):
            assert dispatch_core(SHAPE, A100, AUTO_BACKEND).backend \
                != "unsupported-test"

    def test_winograd_rejects_non_3x3(self):
        shape5 = ConvShape(c=32, n=32, h=14, w=14, r=5, s=5)
        assert not get_backend("cudnn-winograd").supports(shape5, A100)
        with pytest.raises(ValueError):
            dispatch_core(shape5, A100, "cudnn-winograd")

    def test_batch_latencies_match_scalar(self):
        shapes = [SHAPE, ConvShape(c=64, n=32, h=14, w=14)]
        for backend in registered_backends():
            batched = backend.batch_latencies(shapes, A100)
            scalar = [backend.core_latency(s, A100) for s in shapes]
            assert batched == pytest.approx(scalar), backend.name


class TestWarmBackends:
    def test_counts_per_backend(self):
        from repro.perfmodel.tiling import clear_tiling_cache

        # warm_tilings counts only selections actually computed, so
        # start the tdc backend from a cold tiling cache.  The cudnn
        # backend is stateless — nothing to warm, count 0.
        clear_tiling_cache()
        pairs = [(SHAPE, A100)]
        counts = warm_backends(pairs, ["cudnn", "tdc-model"])
        assert counts == {"cudnn": 0, "tdc-model": 1}
        # A second warm-up is a pure cache hit for the tdc backend.
        assert warm_backends(pairs, ["tdc-model"]) == {"tdc-model": 0}

    def test_default_warm_dedupes_pairs(self):
        backend = _ConstantBackend("dedupe-test")
        pairs = [(SHAPE, A100), (SHAPE, A100), (SHAPE, A100)]
        assert backend.warm(pairs) == 1

    def test_auto_expands_to_all_registered(self):
        counts = warm_backends([(SHAPE, A100)], [AUTO_BACKEND])
        assert set(counts) == set(backend_names())

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            warm_backends([(SHAPE, A100)], ["cutlass"])


class TestPlanInvariants:
    """Plan-structure invariants hold for every registered backend."""

    @pytest.fixture()
    def setup(self, resnet18_setup):
        return resnet18_setup

    @pytest.mark.parametrize(
        "backend", list(backend_names()) + [AUTO_BACKEND]
    )
    def test_decomposed_layers_expand_to_pw1_core_pw2(self, setup, backend):
        spec, rank_plan = setup
        plan = plan_tucker_model(spec, rank_plan, A100, core_backend=backend)
        decomposed = {d.layer.name for d in rank_plan.decisions if d.decomposed}
        by_layer = {}
        for k in plan.kernels:
            by_layer.setdefault(k.layer, []).append(k)
        for name in decomposed:
            assert [k.kind for k in by_layer[f"{name}.pw1"]] == ["pointwise"]
            assert [k.kind for k in by_layer[f"{name}.core"]] == ["core"]
            assert [k.kind for k in by_layer[f"{name}.pw2"]] == ["pointwise"]
            assert name not in by_layer  # no leftover dense kernel
        # Skipped / non-decomposable convs stay dense: one kernel under
        # the layer's own name, no pw/core expansion.
        dense = {
            d.layer.name for d in rank_plan.decisions if not d.decomposed
        }
        for name in dense:
            kinds = [k.kind for k in by_layer[name]]
            assert kinds in (["conv"], ["pointwise"])
            assert f"{name}.core" not in by_layer

    @pytest.mark.parametrize(
        "backend", list(backend_names()) + [AUTO_BACKEND]
    )
    def test_core_kernels_record_backend(self, setup, backend):
        spec, rank_plan = setup
        plan = plan_tucker_model(spec, rank_plan, A100, core_backend=backend)
        cores = [k for k in plan.kernels if k.kind == "core"]
        assert cores
        for k in cores:
            assert k.backend in backend_names()
            if backend != AUTO_BACKEND:
                assert k.backend == backend
        counts = plan.backend_counts()
        assert sum(counts.values()) == len(cores)

    def test_bn_relu_toggle_drops_kernels(self, setup):
        spec, rank_plan = setup
        with_bn = plan_tucker_model(
            spec, rank_plan, A100, core_backend="cudnn", include_bn_relu=True
        )
        without = plan_tucker_model(
            spec, rank_plan, A100, core_backend="cudnn", include_bn_relu=False
        )
        assert all(k.kind != "bn_relu" for k in without.kernels)
        assert any(k.kind == "bn_relu" for k in with_bn.kernels)
        assert with_bn.total_latency() > without.total_latency()

    def test_auto_never_exceeds_best_fixed_backend(self, setup):
        spec, rank_plan = setup
        auto_total = plan_tucker_model(
            spec, rank_plan, A100, core_backend=AUTO_BACKEND
        ).total_latency()
        fixed_totals = []
        for backend in backend_names():
            try:
                fixed_totals.append(
                    plan_tucker_model(
                        spec, rank_plan, A100, core_backend=backend
                    ).total_latency()
                )
            except ValueError:
                continue  # backend does not support some core shape
        assert fixed_totals
        assert auto_total <= min(fixed_totals) + 1e-12


class TestFailFast:
    def test_plan_tucker_model_validates_at_entry(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        with pytest.raises(ValueError) as exc:
            plan_tucker_model(spec, rank_plan, A100, core_backend="cutlass")
        # The error carries the registry's known names.
        for name in backend_names():
            assert name in str(exc.value)
        assert AUTO_BACKEND in str(exc.value)

    def test_estimate_e2e_validates_before_planning(self, resnet18_setup):
        spec, _ = resnet18_setup
        with pytest.raises(ValueError) as exc:
            estimate_e2e(spec, A100, backends=["tdc-model", "cutlass"])
        assert "cutlass" in str(exc.value)

    def test_estimate_e2e_rejects_original_as_backend(self, resnet18_setup):
        spec, _ = resnet18_setup
        with pytest.raises(ValueError):
            estimate_e2e(spec, A100, backends=["original"])

    def test_estimate_e2e_rejects_empty_backend_list(self, resnet18_setup):
        spec, _ = resnet18_setup
        with pytest.raises(ValueError):
            estimate_e2e(spec, A100, backends=[])


class TestE2EResultVariants:
    def test_round_trips_arbitrary_variants(self):
        res = E2EResult(
            model_name="m", device_name="d", budget=0.5,
            variants={"original": 2.0, "my-backend": 1.0, "cudnn": 1.5},
            rank_plan=None,
        )
        assert res.latency("my-backend") == 1.0
        assert res.backend_variants() == ("my-backend", "cudnn")
        assert res.speedup("original", "my-backend") == pytest.approx(2.0)
        ms = res.as_milliseconds()
        assert ms["tucker_my_backend"] == pytest.approx(1000.0)
        assert ms["tucker_cudnn"] == pytest.approx(1500.0)
        assert ms["original"] == pytest.approx(2000.0)

    def test_unknown_variant_raises_with_known(self):
        res = E2EResult(
            model_name="m", device_name="d", budget=0.5,
            variants={"original": 2.0, "cudnn": 1.5}, rank_plan=None,
        )
        with pytest.raises(ValueError) as exc:
            res.latency("tvm")
        assert "cudnn" in str(exc.value)

    def test_estimate_with_auto_and_extra_backends(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        res = estimate_e2e(
            spec, A100, rank_plan=rank_plan,
            backends=["tdc-oracle", "cudnn-fft", AUTO_BACKEND],
        )
        assert res.backend_variants() == ("tdc-oracle", "cudnn-fft", "auto")
        # auto is at least as fast as any fixed variant it subsumes.
        assert res.latency("auto") <= res.latency("tdc-oracle") + 1e-12
        assert res.latency("auto") <= res.latency("cudnn-fft") + 1e-12
        auto_plan = res.plans["auto"]
        assert sum(auto_plan.backend_counts().values()) > 0
