"""Serving runtime: micro-batching sessions and the registry."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.codesign.pipeline import decompose_for_device
from repro.gpusim.device import A100
from repro.inference import compile_model
from repro.models.registry import build_model
from repro.serving import (
    AutoReplanPolicy,
    InferenceSession,
    SessionRegistry,
    latency_quantile,
    warm_for_model,
)

IMAGE_HW = (8, 8)


def make_executable(max_batch: int = 4):
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=0.5, rank_step=2)
    model.eval()
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=max_batch, model_name="resnet_tiny",
    )
    return model, exe


def test_session_matches_direct_execution():
    model, exe = make_executable()
    rng = np.random.default_rng(0)
    xs = [rng.standard_normal((3,) + IMAGE_HW) for _ in range(8)]
    with InferenceSession(exe) as session:
        ys = session.infer_many(xs, timeout=30.0)
    ref = model.forward(np.stack(xs))
    np.testing.assert_allclose(np.stack(ys), ref, atol=1e-8)


def test_session_micro_batches_under_load():
    _, exe = make_executable(max_batch=4)
    rng = np.random.default_rng(1)
    xs = rng.standard_normal((16, 3) + IMAGE_HW)
    with InferenceSession(exe, batch_window_s=0.05) as session:
        handles = [session.submit(x) for x in xs]
        results = [h.result(timeout=30.0) for h in handles]
        stats = session.stats()
    assert len(results) == 16
    assert stats.requests == 16
    # 16 requests submitted ahead of the worker must coalesce: strictly
    # fewer batches than requests, none larger than max_batch.
    assert stats.batches < 16
    assert max(stats.batch_histogram) <= 4
    assert stats.mean_batch_size > 1.0
    assert stats.mean_latency_s > 0.0
    assert stats.p95_latency_s >= stats.mean_latency_s * 0.5


def test_session_concurrent_clients():
    model, exe = make_executable(max_batch=4)
    rng = np.random.default_rng(2)
    xs = rng.standard_normal((4, 4, 3) + IMAGE_HW)
    outputs = {}

    def client(i):
        outputs[i] = [
            session.infer(x, timeout=30.0) for x in xs[i]
        ]

    with InferenceSession(exe) as session:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for i in range(4):
        ref = model.forward(xs[i])
        np.testing.assert_allclose(np.stack(outputs[i]), ref, atol=1e-8)


def test_session_rejects_bad_shapes_and_closed_use():
    _, exe = make_executable()
    session = InferenceSession(exe)
    with pytest.raises(ValueError, match="one sample"):
        session.submit(np.zeros((2, 3) + IMAGE_HW))  # batched submit
    with pytest.raises(ValueError, match="one sample"):
        session.submit(np.zeros((3, 4, 4)))  # wrong extent
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.submit(np.zeros((3,) + IMAGE_HW))
    session.close()  # idempotent


def test_concurrent_close_is_safe():
    """Regression (lock-discipline): ``close()`` used to check-and-set
    ``_closed`` without the swap lock, racing the serve loop's fatal
    path and other closers.  Concurrent closes must all return cleanly
    and leave the worker joined."""
    _, exe = make_executable()
    session = InferenceSession(exe)
    barrier = threading.Barrier(6)

    def closer():
        barrier.wait()
        session.close()

    threads = [threading.Thread(target=closer) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not session.stats().worker_alive
    with pytest.raises(RuntimeError, match="closed"):
        session.submit(np.zeros((3,) + IMAGE_HW))


def test_registry_deploys_and_reuses_sessions():
    registry = SessionRegistry()
    try:
        session = registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
            max_batch=2,
        )
        key = registry.session_key("resnet_tiny", A100, "auto")
        assert registry.names() == (key,)
        assert registry.get(key) is session
        # Second create under the same key reuses the deployment.
        assert registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
        ) is session
        y = session.infer(
            np.random.default_rng(3).standard_normal((3,) + IMAGE_HW),
            timeout=30.0,
        )
        assert y.shape == (10,)
        with pytest.raises(KeyError, match="no session"):
            registry.get("nope")
        with pytest.raises(ValueError, match="already exists"):
            registry.add(key, session)
    finally:
        registry.close_all()
    assert registry.names() == ()


def test_registry_concurrent_create_same_key_reuses():
    """Racing deploys of one key must converge on a single session."""
    registry = SessionRegistry()
    results = [None] * 4

    def deploy(i):
        results[i] = registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
        )

    try:
        threads = [
            threading.Thread(target=deploy, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)
        assert len(registry.names()) == 1
    finally:
        registry.close_all()


def test_close_rejects_queued_requests_instead_of_hanging():
    """A submit that races close() must error, not block forever.

    Reproduces the race deterministically: the request is enqueued
    *behind* the shutdown sentinel (as a preempted submit would), then
    close() runs.  The waiter must get a RuntimeError.
    """
    from repro.serving.session import _SENTINEL

    _, exe = make_executable()
    session = InferenceSession(exe)
    session._queue.put(_SENTINEL)  # worker will begin shutting down
    handle = session.submit(np.zeros((3,) + IMAGE_HW))
    session.close()
    with pytest.raises(RuntimeError, match="session closed"):
        handle.result(timeout=5.0)


def test_stats_window_is_bounded_under_sustained_load():
    """Heavy traffic must not grow the latency history without bound
    (and quantiles are computed over the bounded window)."""
    _, exe = make_executable(max_batch=4)
    with InferenceSession(exe, stats_window=64) as session:
        xs = np.random.default_rng(5).standard_normal((200, 3) + IMAGE_HW)
        for x in xs:
            session.infer(x, timeout=30.0)
        stats = session.stats()
        assert stats.requests == 200
        assert stats.latency_window == 64
        assert len(session._latencies) == 64
        assert session._latencies.capacity == 64
        assert stats.mean_latency_s > 0
        assert stats.p50_latency_s <= stats.p95_latency_s


def test_p95_is_a_real_quantile_not_the_max():
    """n=20 used to index lat[19] — the maximum, i.e. p100."""
    values = np.arange(1.0, 21.0)  # 20 distinct latencies
    p95 = latency_quantile(values, 0.95)
    assert p95 < values.max()
    assert p95 == pytest.approx(np.quantile(values, 0.95))
    assert latency_quantile(np.array([]), 0.95) == 0.0
    assert latency_quantile(np.array([3.0]), 0.95) == 3.0

    # End to end: inject a known window and read stats().
    _, exe = make_executable()
    with InferenceSession(exe) as session:
        with session._lock:
            session._latencies.extend(values)
        stats = session.stats()
    assert stats.p95_latency_s == pytest.approx(np.quantile(values, 0.95))
    assert stats.p95_latency_s < values.max()
    assert stats.p50_latency_s == pytest.approx(np.quantile(values, 0.50))


def test_infer_many_timeout_is_a_shared_deadline():
    """timeout=T bounds the whole call, not T per handle."""
    _, exe = make_executable(max_batch=1)
    real_run = exe.run

    def slow_run(x):
        time.sleep(0.08)
        return real_run(x)

    exe.run = slow_run
    session = InferenceSession(exe, batch_window_s=0.0, warm=False)
    try:
        xs = np.random.default_rng(6).standard_normal((10, 3) + IMAGE_HW)
        t0 = time.perf_counter()
        with pytest.raises(TimeoutError):
            session.infer_many(list(xs), timeout=0.2)
        elapsed = time.perf_counter() - t0
        # Per-handle semantics would have served all 10 at ~80 ms each
        # without ever timing out (~0.8 s); the shared deadline fires
        # at ~0.2 s.
        assert elapsed < 0.6
    finally:
        session.close()


def _cast_model(model, dtype):
    for p in model.parameters():
        p.data = p.data.astype(dtype)
        p.grad = p.grad.astype(dtype)
    for mod in model.modules():
        buffers = getattr(mod, "_buffers", None)
        if buffers:
            for key, value in buffers.items():
                buffers[key] = np.asarray(value).astype(dtype)
    return model


def test_arena_dtype_follows_model_and_serving_never_casts():
    """A float32 model compiles a float32 arena (half the bytes) and
    the serving steady state performs zero hot-path casts."""
    model64, exe64 = make_executable(max_batch=2)
    assert exe64.dtype == np.float64  # the training stack is float64

    model32 = _cast_model(build_model("resnet_tiny", seed=0), np.float32)
    decompose_for_device(model32, A100, IMAGE_HW, budget=0.5, rank_step=2)
    _cast_model(model32, np.float32)  # decomposition re-derives float64
    model32.eval()
    exe32 = compile_model(
        model32, A100, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=2, model_name="resnet_tiny",
    )
    assert exe32.dtype == np.float32
    assert exe32.arena.nbytes < exe64.arena.nbytes

    rng = np.random.default_rng(7)
    xs = rng.standard_normal((8, 3) + IMAGE_HW)  # float64 requests
    ref = model64.forward(xs)
    with InferenceSession(exe32) as session:
        ys = session.infer_many(list(xs), timeout=30.0)
        # Staging converts dtypes up front; Executable.run never casts.
        assert session.executable.hot_casts == 0
    assert ys[0].dtype == np.float32
    np.testing.assert_allclose(np.stack(ys), ref, atol=1e-3, rtol=1e-3)


def test_recalibrate_hot_swaps_under_concurrent_traffic():
    """The acceptance criterion: zero failed or diverging requests
    while the executable is re-planned and swapped."""
    from repro.calibration import calibration_cache

    registry = SessionRegistry()
    calibration_cache().clear()
    try:
        session = registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
            max_batch=4,
        )
        name = registry.names()[0]
        model = registry._deployments[name].model
        rng = np.random.default_rng(8)
        xs = rng.standard_normal((16, 3) + IMAGE_HW)
        ref = model.forward(xs)
        errors = []
        outputs = [None] * 4

        def client(i):
            try:
                got = []
                for _ in range(6):
                    for x in xs[i * 4 : (i + 1) * 4]:
                        got.append(session.infer(x, timeout=30.0))
                outputs[i] = got
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        old_exe = session.executable
        run = registry.recalibrate(name, repeats=2)
        for t in threads:
            t.join()

        assert errors == []
        assert session.executable is not old_exe
        assert session.stats().replans == 1
        assert run.total_measured_s > 0
        for i in range(4):
            for j, y in enumerate(outputs[i]):
                np.testing.assert_allclose(
                    y, ref[i * 4 + j % 4], atol=1e-6,
                )
        # Post-swap requests still match Module.forward.
        y = session.infer(xs[0], timeout=30.0)
        np.testing.assert_allclose(y, ref[0], atol=1e-6)
        # The swapped-in plan is calibrated: its predicted latency is
        # in measured (CPU wall) territory, not raw simulated-GPU.
        assert session.executable.predicted_latency() > (
            old_exe.predicted_latency()
        )
    finally:
        registry.close_all()
        calibration_cache().clear()


def test_recalibrate_requires_deployment_record():
    _, exe = make_executable()
    registry = SessionRegistry()
    try:
        registry.add("manual", InferenceSession(exe))
        with pytest.raises(KeyError, match="deployment record"):
            registry.recalibrate("manual")
    finally:
        registry.close_all()


def test_swap_to_smaller_max_batch_chunks_inflight_batch():
    """A batch collected at the old max_batch must survive a shrink
    swap: the worker chunks it to the new executable's limit."""
    model, exe4 = make_executable(max_batch=4)
    exe1 = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=1, model_name="resnet_tiny",
    )
    rng = np.random.default_rng(10)
    xs = rng.standard_normal((4, 3) + IMAGE_HW)
    ref = model.forward(xs)
    session = InferenceSession(exe4, batch_window_s=0.5)
    try:
        with session.paused():
            handles = [session.submit(x) for x in xs]
            # Let the worker collect all four, then block on the lock.
            time.sleep(0.7)
            session.swap_executable(exe1)  # re-entrant: same thread
        results = [h.result(timeout=30.0) for h in handles]
        np.testing.assert_allclose(np.stack(results), ref, atol=1e-8)
        assert session.max_batch == 1
    finally:
        session.close()


def test_raising_on_replan_callback_does_not_kill_worker():
    """A user callback that raises must be contained: the worker keeps
    serving and the pending latch resets."""
    _, exe = make_executable(max_batch=2)

    def bad_callback(_session):
        raise RuntimeError("boom")

    session = InferenceSession(
        exe,
        auto_replan=AutoReplanPolicy(threshold=0.01, window=1,
                                     cooldown_s=0.0),
        on_replan=bad_callback,
    )
    try:
        rng = np.random.default_rng(11)
        xs = rng.standard_normal((6, 3) + IMAGE_HW)
        for x in xs:  # every request would re-trigger the callback
            session.infer(x, timeout=30.0)
        assert session.stats().requests == 6
        assert session._replan_pending is False
    finally:
        session.close()


def test_drift_ring_covers_the_policy_window():
    """A policy window larger than the drift ring would gate forever;
    the session sizes the ring up to cover it."""
    _, exe = make_executable()
    session = InferenceSession(
        exe, drift_window=8,
        auto_replan=AutoReplanPolicy(window=32, cooldown_s=1e9),
    )
    try:
        assert session._drift.capacity >= 32
    finally:
        session.close()


def test_swap_rejects_mismatched_input_shape():
    _, exe_a = make_executable()
    model_b = build_model("resnet_tiny", seed=0).eval()
    exe_b = compile_model(
        model_b, A100, image_hw=(16, 16), core_backend="cudnn",
        max_batch=2, model_name="resnet_tiny",
    )
    session = InferenceSession(exe_a)
    try:
        with pytest.raises(ValueError, match="input shape"):
            session.swap_executable(exe_b)
    finally:
        session.close()


def test_auto_replan_policy_triggers_on_drift():
    """Raw simulated-GPU predictions drift far from CPU wall time, so
    an aggressive policy must recalibrate within a few requests —
    after which drift re-centers near 1."""
    from repro.calibration import calibration_cache

    registry = SessionRegistry()
    calibration_cache().clear()
    try:
        session = registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
            max_batch=2, name="drift-test",
            auto_replan=AutoReplanPolicy(
                threshold=0.25, window=3, cooldown_s=0.0
            ),
        )
        rng = np.random.default_rng(9)
        xs = rng.standard_normal((40, 3) + IMAGE_HW)
        deadline = time.perf_counter() + 60.0
        i = 0
        while time.perf_counter() < deadline:
            session.infer(xs[i % 40], timeout=30.0)
            i += 1
            if session.stats().replans >= 1:
                break
        stats = session.stats()
        assert stats.replans >= 1, (
            f"policy never fired after {i} requests (drift "
            f"{session.drift_ratio():.2f})"
        )
        assert stats.requests == i
    finally:
        registry.close_all()
        calibration_cache().clear()


def test_warm_for_model_covers_tucker_cores():
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=0.5, rank_step=2)
    evaluations = warm_for_model(model, A100, IMAGE_HW, backends=("auto",))
    # auto expands to every registered backend; each reports a count.
    from repro.backends import backend_names

    assert set(evaluations) == set(backend_names())
    assert all(v >= 0 for v in evaluations.values())


def test_warm_for_model_dense_only_is_noop():
    model = build_model("resnet_tiny", seed=0)  # no Tucker sites
    assert warm_for_model(model, A100, IMAGE_HW) == {}
