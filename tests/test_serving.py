"""Serving runtime: micro-batching sessions and the registry."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.codesign.pipeline import decompose_for_device
from repro.gpusim.device import A100
from repro.inference import compile_model
from repro.models.registry import build_model
from repro.serving import InferenceSession, SessionRegistry, warm_for_model

IMAGE_HW = (8, 8)


def make_executable(max_batch: int = 4):
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=0.5, rank_step=2)
    model.eval()
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=max_batch, model_name="resnet_tiny",
    )
    return model, exe


def test_session_matches_direct_execution():
    model, exe = make_executable()
    rng = np.random.default_rng(0)
    xs = [rng.standard_normal((3,) + IMAGE_HW) for _ in range(8)]
    with InferenceSession(exe) as session:
        ys = session.infer_many(xs, timeout=30.0)
    ref = model.forward(np.stack(xs))
    np.testing.assert_allclose(np.stack(ys), ref, atol=1e-8)


def test_session_micro_batches_under_load():
    _, exe = make_executable(max_batch=4)
    rng = np.random.default_rng(1)
    xs = rng.standard_normal((16, 3) + IMAGE_HW)
    with InferenceSession(exe, batch_window_s=0.05) as session:
        handles = [session.submit(x) for x in xs]
        results = [h.result(timeout=30.0) for h in handles]
        stats = session.stats()
    assert len(results) == 16
    assert stats.requests == 16
    # 16 requests submitted ahead of the worker must coalesce: strictly
    # fewer batches than requests, none larger than max_batch.
    assert stats.batches < 16
    assert max(stats.batch_histogram) <= 4
    assert stats.mean_batch_size > 1.0
    assert stats.mean_latency_s > 0.0
    assert stats.p95_latency_s >= stats.mean_latency_s * 0.5


def test_session_concurrent_clients():
    model, exe = make_executable(max_batch=4)
    rng = np.random.default_rng(2)
    xs = rng.standard_normal((4, 4, 3) + IMAGE_HW)
    outputs = {}

    def client(i):
        outputs[i] = [
            session.infer(x, timeout=30.0) for x in xs[i]
        ]

    with InferenceSession(exe) as session:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    for i in range(4):
        ref = model.forward(xs[i])
        np.testing.assert_allclose(np.stack(outputs[i]), ref, atol=1e-8)


def test_session_rejects_bad_shapes_and_closed_use():
    _, exe = make_executable()
    session = InferenceSession(exe)
    with pytest.raises(ValueError, match="one sample"):
        session.submit(np.zeros((2, 3) + IMAGE_HW))  # batched submit
    with pytest.raises(ValueError, match="one sample"):
        session.submit(np.zeros((3, 4, 4)))  # wrong extent
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        session.submit(np.zeros((3,) + IMAGE_HW))
    session.close()  # idempotent


def test_registry_deploys_and_reuses_sessions():
    registry = SessionRegistry()
    try:
        session = registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
            max_batch=2,
        )
        key = registry.session_key("resnet_tiny", A100, "auto")
        assert registry.names() == (key,)
        assert registry.get(key) is session
        # Second create under the same key reuses the deployment.
        assert registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
        ) is session
        y = session.infer(
            np.random.default_rng(3).standard_normal((3,) + IMAGE_HW),
            timeout=30.0,
        )
        assert y.shape == (10,)
        with pytest.raises(KeyError, match="no session"):
            registry.get("nope")
        with pytest.raises(ValueError, match="already exists"):
            registry.add(key, session)
    finally:
        registry.close_all()
    assert registry.names() == ()


def test_registry_concurrent_create_same_key_reuses():
    """Racing deploys of one key must converge on a single session."""
    registry = SessionRegistry()
    results = [None] * 4

    def deploy(i):
        results[i] = registry.create(
            "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5,
        )

    try:
        threads = [
            threading.Thread(target=deploy, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)
        assert len(registry.names()) == 1
    finally:
        registry.close_all()


def test_close_rejects_queued_requests_instead_of_hanging():
    """A submit that races close() must error, not block forever.

    Reproduces the race deterministically: the request is enqueued
    *behind* the shutdown sentinel (as a preempted submit would), then
    close() runs.  The waiter must get a RuntimeError.
    """
    from repro.serving.session import _SENTINEL

    _, exe = make_executable()
    session = InferenceSession(exe)
    session._queue.put(_SENTINEL)  # worker will begin shutting down
    handle = session.submit(np.zeros((3,) + IMAGE_HW))
    session.close()
    with pytest.raises(RuntimeError, match="session closed"):
        handle.result(timeout=5.0)


def test_warm_for_model_covers_tucker_cores():
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=0.5, rank_step=2)
    evaluations = warm_for_model(model, A100, IMAGE_HW, backends=("auto",))
    # auto expands to every registered backend; each reports a count.
    from repro.backends import backend_names

    assert set(evaluations) == set(backend_names())
    assert all(v >= 0 for v in evaluations.values())


def test_warm_for_model_dense_only_is_noop():
    model = build_model("resnet_tiny", seed=0)  # no Tucker sites
    assert warm_for_model(model, A100, IMAGE_HW) == {}
