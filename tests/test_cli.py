"""Tests for the command-line interface (fast commands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_device_default(self):
        args = build_parser().parse_args(["fig4"])
        assert args.device == "2080Ti"

    def test_codegen_shape(self):
        args = build_parser().parse_args(
            ["codegen", "--shape", "32", "32", "14", "14"]
        )
        assert args.shape == [32, 32, 14, 14]

    def test_e2e_backend_choices_follow_registry(self):
        args = build_parser().parse_args(
            ["e2e", "--backend", "auto", "tdc-oracle", "--models", "resnet18"]
        )
        assert args.backend == ["auto", "tdc-oracle"]
        assert args.models == ["resnet18"]

    def test_e2e_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["e2e", "--backend", "cutlass"])

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.router == "least-loaded"
        assert args.chaos is False
        assert args.fallback_budget == 0.3
        assert args.priorities == "high,normal,low"

    def test_fleet_chaos_flags(self):
        args = build_parser().parse_args(
            ["fleet", "--devices", "A100,2080Ti", "--chaos",
             "--chaos-crash-p", "0.5", "--chaos-fraction", "0.5"]
        )
        assert args.devices == "A100,2080Ti"
        assert args.chaos and args.chaos_crash_p == 0.5
        assert args.chaos_fraction == 0.5

    def test_fleet_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--router", "random"])


class TestCommands:
    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out

    def test_codegen(self, capsys):
        assert main(["codegen", "--shape", "32", "32", "14", "14"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void tdc_core_conv" in out
        assert "#define C 32" in out

    def test_oracle_gap(self, capsys):
        assert main(["oracle-gap", "--device", "2080Ti"]) == 0
        assert "MEAN" in capsys.readouterr().out

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            main(["fig4", "--device", "h100"])

    def test_fleet_chaos_serves_all_requests(self, capsys):
        assert main([
            "fleet", "--requests", "24", "--replicas", "2",
            "--clients", "2", "--chaos", "--timeout", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro fleet" in out
        assert "requests completed" in out
        assert "replica resnet_tiny@A100#0" in out

    def test_backends_list(self, capsys):
        from repro.backends import known_backend_names

        assert main(["backends", "list"]) == 0
        out = capsys.readouterr().out
        for name in known_backend_names():
            assert name in out


class TestReport:
    def test_report_command(self, capsys):
        assert main(["report", "--no-e2e"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Figure 6" in out and "Figure 7" in out
        assert "tiling-selection quality" in out
        assert "kernel-tensor layout" in out

    def test_generate_report_function(self):
        from repro.experiments.report import generate_report

        text = generate_report(include_e2e=False)
        assert "Average TDC speedups" in text
