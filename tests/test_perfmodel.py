"""Tests for the analytical performance model and tiling selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import A100, RTX2080TI
from repro.kernels.base import ConvShape
from repro.kernels.tdc_direct import TDCDirectKernel, Tiling
from repro.perfmodel.analytical import (
    comp_latency,
    comp_latency_blk,
    comp_waves,
    estimate,
    memory_latency,
    volume_input,
    volume_kernel,
    volume_output,
    volume_total,
)
from repro.perfmodel.tiling import (
    clear_tiling_cache,
    enumerate_tilings,
    select_tiling,
    select_tiling_model,
    select_tiling_oracle,
)

SHAPE = ConvShape(64, 32, 56, 56)
TILING = Tiling(8, 8, 16)


class TestAnalyticalEquations:
    def test_comp_latency_blk_formula(self):
        """Verbatim Eq.: 2 (TH+R-1)(TW+S-1) TC GPU_ths R S / GPU_peak."""
        expected = (
            2 * 10 * 10 * 16 * A100.total_threads * 9 / A100.peak_flops
        )
        assert comp_latency_blk(SHAPE, TILING, A100) == pytest.approx(expected)

    def test_volume_kernel_eq16(self):
        # ceil(56/8)^2 * 64 * 32
        assert volume_kernel(SHAPE, TILING) == 7 * 7 * 64 * 32

    def test_volume_input_eq17(self):
        assert volume_input(SHAPE, TILING) == 7 * 7 * 64 * 10 * 10

    def test_volume_output_eq18(self):
        assert volume_output(SHAPE, TILING) == 56 * 56 * 32 * 4  # C/TC = 4

    def test_volume_total_eq19(self):
        assert volume_total(SHAPE, TILING) == (
            volume_input(SHAPE, TILING)
            + volume_kernel(SHAPE, TILING)
            + volume_output(SHAPE, TILING)
        )

    def test_memory_latency_is_volume_over_bandwidth(self):
        expected = volume_total(SHAPE, TILING) * 4 / A100.dram_bandwidth
        assert memory_latency(SHAPE, TILING, A100) == pytest.approx(expected)

    def test_waves_fractional_below_one(self):
        w = comp_waves(SHAPE, TILING, A100)
        assert 0 < w <= 1 or w == int(w)

    def test_waves_integer_above_one(self):
        big = ConvShape(256, 256, 112, 112)
        w = comp_waves(big, Tiling(4, 4, 4), A100)
        assert w >= 1 and w == int(w)

    def test_comp_latency_product(self):
        assert comp_latency(SHAPE, TILING, A100) == pytest.approx(
            comp_waves(SHAPE, TILING, A100)
            * comp_latency_blk(SHAPE, TILING, A100)
        )

    def test_estimate_bundles_everything(self):
        est = estimate(SHAPE, TILING, A100)
        assert est.comp_latency > 0
        assert est.memory_latency > 0
        assert 0 < est.occupancy <= 1

    def test_smaller_tc_more_output_volume(self):
        v1 = volume_output(SHAPE, Tiling(8, 8, 64))
        v2 = volume_output(SHAPE, Tiling(8, 8, 8))
        assert v2 > v1

    @given(st.sampled_from([1, 2, 4, 8]), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=16, deadline=None)
    def test_volumes_positive(self, th, tw):
        t = Tiling(th, tw, 8)
        assert volume_total(SHAPE, t) > 0


class TestEnumeration:
    def test_candidates_feasible_and_unique(self, device):
        cands = enumerate_tilings(SHAPE, device)
        keys = {(t.th, t.tw, t.tc) for t in cands}
        assert len(keys) == len(cands)
        for t in cands:
            assert t.th <= SHAPE.h and t.tc <= SHAPE.c

    def test_no_feasible_raises(self):
        # 2048 output channels can never fit one thread per channel.
        with pytest.raises(ValueError):
            enumerate_tilings(ConvShape(64, 2048, 14, 14), A100)


class TestSelection:
    def test_oracle_is_minimum_of_candidates(self, device):
        shape = ConvShape(32, 32, 14, 14)
        choice = select_tiling_oracle(shape, device)
        for t in enumerate_tilings(shape, device):
            assert choice.simulated_latency <= TDCDirectKernel(t).latency(
                shape, device
            ) + 1e-15

    def test_model_never_beats_oracle(self, device):
        for tup in [(64, 32, 56, 56), (192, 96, 14, 14), (32, 32, 7, 7)]:
            shape = ConvShape(*tup)
            o = select_tiling_oracle(shape, device)
            m = select_tiling_model(shape, device)
            assert m.simulated_latency >= o.simulated_latency - 1e-15

    def test_model_gap_reasonable(self, device):
        """Sec 5.5: model lands within ~2x of oracle on average."""
        from repro.models.arch_specs import PAPER_CONV_SHAPES

        gaps = []
        for tup in PAPER_CONV_SHAPES[2:10]:
            shape = ConvShape(*tup)
            o = select_tiling_oracle(shape, device)
            m = select_tiling_model(shape, device)
            gaps.append(m.simulated_latency / o.simulated_latency)
        assert float(np.mean(gaps)) < 2.5

    def test_selection_deterministic(self, device):
        shape = ConvShape(64, 32, 28, 28)
        a = select_tiling_oracle(shape, device)
        b = select_tiling_oracle(shape, device)
        assert a.tiling == b.tiling

    def test_select_dispatch_and_cache(self, device):
        clear_tiling_cache()
        shape = ConvShape(32, 32, 14, 14)
        c1 = select_tiling(shape, device, "oracle")
        c2 = select_tiling(shape, device, "oracle")
        assert c1 is c2  # memoized
        with pytest.raises(ValueError):
            select_tiling(shape, device, "random")

    def test_model_top_fraction_validation(self, device):
        with pytest.raises(ValueError):
            select_tiling_model(SHAPE, device, top_fraction=0.0)

    def test_wider_pool_never_worse(self, device):
        """Keeping 100% of candidates lets the memory filter choose
        globally, which must be at least as good as a thin pool only if
        memory ranking is informative; here we just assert both run."""
        shape = ConvShape(64, 32, 28, 28)
        thin = select_tiling_model(shape, device, top_fraction=0.05)
        wide = select_tiling_model(shape, device, top_fraction=1.0)
        assert thin.simulated_latency > 0 and wide.simulated_latency > 0

    def test_choice_records_method(self, device):
        shape = ConvShape(32, 32, 14, 14)
        assert select_tiling_oracle(shape, device).method == "oracle"
        assert select_tiling_model(shape, device).method == "model"
