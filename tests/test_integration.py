"""Cross-package integration tests.

These tie the layers of the system together: the NN layer semantics
against the simulated kernel schemes, the code generator against the
simulator's resource accounting, and the full pipeline end to end.
"""

import numpy as np
import pytest

from repro.codesign import run_tdc_pipeline
from repro.compression.training import evaluate, train_model
from repro.data.synthetic import make_cifar_like
from repro.gpusim.device import A100
from repro.kernels.base import ConvShape, reference_conv
from repro.kernels.pointwise import PointwiseConvKernel
from repro.kernels.tdc_direct import TDCDirectKernel, Tiling
from repro.models.registry import build_model
from repro.nn import Conv2d, TuckerConv2d
from repro.nn.tucker_conv import TuckerConv2d as TC


class TestLayerKernelConsistency:
    """A TuckerConv2d layer and the three simulated device kernels
    (1x1 -> TDC core -> 1x1) must compute the same function."""

    def test_tucker_layer_equals_kernel_chain(self, rng):
        layer = TuckerConv2d(
            6, 8, 3, rank_in=3, rank_out=4, padding=1, bias=False, seed=0
        )
        x = rng.standard_normal((1, 6, 10, 10))
        y_layer = layer.forward(x)[0]

        pw = PointwiseConvKernel()
        core = TDCDirectKernel(Tiling(4, 4, 2))
        z1 = pw.run(x[0], layer.w_in.data[:, :, None, None])
        z2 = core.run(z1, layer.core.data)
        y_kernels = pw.run(z2, layer.w_out.data[:, :, None, None])
        np.testing.assert_allclose(y_layer, y_kernels, atol=1e-9)

    def test_dense_layer_equals_reference_kernel(self, rng):
        conv = Conv2d(5, 7, 3, padding=1, bias=False, seed=0)
        x = rng.standard_normal((1, 5, 9, 9))
        y_layer = conv.forward(x)[0]
        y_kernel = reference_conv(x[0], conv.weight.data)
        np.testing.assert_allclose(y_layer, y_kernel, atol=1e-10)

    def test_flops_accounting_matches_codesign(self):
        """The NN layer's flops() and the codesign formula agree."""
        from repro.codesign.flops import tucker_flops

        layer = TuckerConv2d(16, 24, 3, rank_in=4, rank_out=6, padding=1)
        got = layer.flops(14, 14)
        expected = tucker_flops(16, 24, 14, 14, d1=4, d2=6)
        assert got == expected

    def test_conv_flops_match(self):
        from repro.codesign.flops import conv_flops

        conv = Conv2d(16, 24, 3, padding=1)
        assert conv.flops(14, 14) == conv_flops(16, 24, 14, 14)


class TestCodegenSimulatorConsistency:
    def test_generated_constants_match_launch(self):
        from repro.kernels.codegen import kernel_constants

        shape = ConvShape(64, 32, 28, 28)
        tiling = Tiling(7, 7, 16)
        consts = kernel_constants(shape, tiling)
        launch = TDCDirectKernel(tiling).launches(shape, A100)[0]
        assert launch.n_blocks == (
            consts["TILES_H"] * consts["TILES_W"] * consts["TILES_C"]
        )
        assert launch.threads_per_block == consts["N"]


class TestPipelineEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline_result(self):
        train_data, test_data = make_cifar_like(
            n_train=96, n_test=48, image_size=8, num_classes=4, seed=0
        )
        model = build_model("resnet_tiny", num_classes=4, seed=1)
        train_model(model, train_data, epochs=3, batch_size=16, seed=0)
        return run_tdc_pipeline(
            model, train_data, test_data, device=A100,
            budget=0.5, rank_step=2, admm_epochs=2, finetune_epochs=1,
            batch_size=16, rho=0.5, seed=0,
        ), test_data

    def test_produces_tucker_layers(self, pipeline_result):
        result, _ = pipeline_result
        n_tucker = sum(
            1 for _, m in result.model.named_modules()
            if isinstance(m, TuckerConv2d)
        )
        assert n_tucker == len(result.rank_map) > 0

    def test_flops_reduced(self, pipeline_result):
        result, _ = pipeline_result
        assert result.achieved_flops_reduction > 0.2

    def test_model_still_functions(self, pipeline_result):
        result, test_data = pipeline_result
        acc = evaluate(result.model, test_data)
        assert acc >= 0.25  # at least chance level after compression

    def test_plan_consistent_with_rank_map(self, pipeline_result):
        result, _ = pipeline_result
        for d in result.plan.decisions:
            if d.decomposed:
                assert result.rank_map[d.layer.name] == (d.d2, d.d1)

    def test_speedup_reported(self, pipeline_result):
        result, _ = pipeline_result
        assert result.layerwise_speedup > 0


class TestDeterminismAcrossStack:
    def test_latency_estimates_reproducible(self):
        from repro.perfmodel.tiling import clear_tiling_cache, select_tiling

        shape = ConvShape(64, 32, 28, 28)
        clear_tiling_cache()
        a = select_tiling(shape, A100, "oracle").simulated_latency
        clear_tiling_cache()
        b = select_tiling(shape, A100, "oracle").simulated_latency
        assert a == b

    def test_pipeline_reproducible(self):
        train_data, test_data = make_cifar_like(
            n_train=64, n_test=32, image_size=8, num_classes=4, seed=0
        )

        def run():
            model = build_model("resnet_tiny", num_classes=4, seed=1)
            train_model(model, train_data, epochs=2, batch_size=16, seed=0)
            result = run_tdc_pipeline(
                model, train_data, test_data, device=A100,
                budget=0.5, rank_step=2, admm_epochs=1, finetune_epochs=1,
                batch_size=16, seed=0,
            )
            return result.compressed_accuracy, tuple(sorted(result.rank_map))

        assert run() == run()
