"""Tests for projections, ADMM training, baselines, and comparators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.admm import ADMMTrainer
from repro.compression.baselines import (
    decompose_and_finetune,
    decompose_model,
    direct_train_tucker,
    randomize_tucker_model,
)
from repro.compression.comparators import (
    FPGMComparator,
    StdTKDComparator,
    TDCComparator,
    achieved_tucker_reduction,
    uniform_tucker_ranks_for_budget,
)
from repro.compression.projections import (
    cp_projection,
    projection_error,
    svd_projection,
    tt_projection,
    tucker2_projection,
)
from repro.compression.training import evaluate, train_model
from repro.models.introspection import find_module, trace_conv_sites
from repro.models.registry import build_model
from repro.nn import Conv2d, TuckerConv2d
from repro.nn.module import Sequential
from repro.nn.layers import GlobalAvgPool2d, Linear, ReLU


class TestProjections:
    @pytest.mark.parametrize(
        "proj,ranks",
        [
            (tucker2_projection, (3, 2)),
            (tt_projection, (3, 4)),
            (svd_projection, (3,)),
        ],
    )
    def test_idempotent(self, proj, ranks, rng):
        k = rng.standard_normal((6, 5, 3, 3))
        p1 = proj(k, ranks)
        p2 = proj(p1, ranks)
        np.testing.assert_allclose(p1, p2, atol=1e-7)

    def test_cp_projection_reduces_error_with_rank(self, rng):
        k = rng.standard_normal((5, 4, 3, 3))
        e_small = projection_error(k, cp_projection, (1,))
        e_big = projection_error(k, cp_projection, (20,))
        assert e_big <= e_small + 0.05

    def test_svd_projection_matches_truncated_svd_error(self, rng):
        k = rng.standard_normal((6, 4, 3, 3))
        mat = k.reshape(6, -1)
        _, s, _ = np.linalg.svd(mat, full_matrices=False)
        expected = np.sqrt(np.sum(s[2:] ** 2)) / np.linalg.norm(mat)
        assert projection_error(k, svd_projection, (2,)) == pytest.approx(
            expected, abs=1e-10
        )

    def test_tt_projection_shape_preserved(self, rng):
        k = rng.standard_normal((6, 5, 3, 3))
        assert tt_projection(k, (2, 3)).shape == k.shape

    def test_projection_error_zero_for_in_set(self, rng):
        k = rng.standard_normal((6, 5, 3, 3))
        p = tucker2_projection(k, (3, 2))
        assert projection_error(p, tucker2_projection, (3, 2)) < 1e-9


def small_conv_model(seed=0):
    """Two-conv toy classifier used by the compression tests."""
    return Sequential(
        Conv2d(3, 8, 3, padding=1, seed=seed),
        ReLU(),
        Conv2d(8, 8, 3, padding=1, seed=seed + 1),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(8, 4, seed=seed + 2),
    )


class TestTraining:
    def test_loss_decreases(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = small_conv_model()
        hist = train_model(model, train_data, epochs=3, batch_size=16,
                           lr=0.05, seed=0)
        assert hist.losses[-1] < hist.losses[0]

    def test_beats_chance(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = small_conv_model()
        train_model(model, train_data, epochs=6, batch_size=16, lr=0.05, seed=0)
        acc = evaluate(model, test_data)
        assert acc > 1.5 / 4  # clearly above the 25% chance level

    def test_deterministic(self, tiny_dataset):
        train_data, _ = tiny_dataset
        h1 = train_model(small_conv_model(), train_data, epochs=2,
                         batch_size=16, seed=3)
        h2 = train_model(small_conv_model(), train_data, epochs=2,
                         batch_size=16, seed=3)
        assert h1.losses == h2.losses

    def test_evaluate_eval_mode_restored(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = small_conv_model()
        model.train()
        evaluate(model, test_data)
        assert model.training


class TestADMM:
    def _setup(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = small_conv_model()
        train_model(model, train_data, epochs=3, batch_size=16, seed=0)
        rank_map = {"layer2": (4, 4)}  # second conv
        return model, rank_map, train_data, test_data

    def test_projection_error_decreases(self, tiny_dataset):
        """ADMM's purpose: the kernel drifts toward the rank set Q, so
        the hard-projection error falls versus the pretrained model.
        (The raw primal residual ||K - K̂|| may transiently rise while
        the dual variable grows, so it is not asserted here.)"""
        from repro.compression.projections import (
            projection_error,
            tucker2_projection,
        )

        model, rank_map, train_data, _ = self._setup(tiny_dataset)
        conv = find_module(model, "layer2")
        before = projection_error(conv.weight.data, tucker2_projection, (4, 4))
        trainer = ADMMTrainer(model, rank_map, rho=0.2)
        trainer.train(train_data, epochs=4, batch_size=16, lr=0.02, seed=0)
        after = projection_error(conv.weight.data, tucker2_projection, (4, 4))
        assert after < before

    def test_residuals_reported_per_layer(self, tiny_dataset):
        model, rank_map, train_data, _ = self._setup(tiny_dataset)
        trainer = ADMMTrainer(model, rank_map, rho=0.2)
        res = trainer.residuals()
        assert set(res) == set(rank_map)
        assert all(v >= 0 for v in res.values())

    def test_projected_weights_decompose_exactly(self, tiny_dataset):
        model, rank_map, train_data, _ = self._setup(tiny_dataset)
        trainer = ADMMTrainer(model, rank_map, rho=0.05)
        trainer.train(train_data, epochs=2, batch_size=16, lr=0.02, seed=0)
        trainer.project_weights()
        conv = find_module(model, "layer2")
        from repro.tensor.tucker import tucker2_relative_error

        assert tucker2_relative_error(conv.weight.data, 4, 4) < 1e-6

    def test_penalty_gradient_term(self, tiny_dataset):
        model, rank_map, *_ = self._setup(tiny_dataset)
        trainer = ADMMTrainer(model, rank_map, rho=1.0)
        conv = find_module(model, "layer2")
        model.zero_grad()
        trainer.add_penalty_gradients()
        expected = conv.weight.data - trainer.states["layer2"].k_hat
        np.testing.assert_allclose(conv.weight.grad, expected, atol=1e-12)

    def test_rejects_non_conv_target(self, tiny_dataset):
        model, *_ = self._setup(tiny_dataset)
        with pytest.raises(TypeError):
            ADMMTrainer(model, {"layer1": (2, 2)})  # ReLU

    def test_rejects_empty_rank_map(self, tiny_dataset):
        model, *_ = self._setup(tiny_dataset)
        with pytest.raises(ValueError):
            ADMMTrainer(model, {})

    def test_tt_projection_variant(self, tiny_dataset):
        from repro.compression.projections import tt_projection

        model, rank_map, train_data, _ = self._setup(tiny_dataset)
        trainer = ADMMTrainer(model, rank_map, projection=tt_projection)
        trainer.train(train_data, epochs=1, batch_size=16, seed=0)
        assert trainer.max_residual() >= 0


class TestBaselines:
    def test_decompose_model_replaces_layers(self, tiny_dataset):
        model = small_conv_model()
        decompose_model(model, {"layer2": (4, 4)})
        assert isinstance(find_module(model, "layer2"), TuckerConv2d)

    def test_decompose_preserves_function_at_full_rank(self, tiny_dataset, rng):
        model = small_conv_model()
        x = rng.standard_normal((2, 3, 8, 8))
        model.eval()
        before = model.forward(x)
        decompose_model(model, {"layer2": (8, 8)})
        model.eval()
        after = model.forward(x)
        np.testing.assert_allclose(before, after, atol=1e-8)

    def test_randomize_tucker_model(self):
        model = small_conv_model()
        randomize_tucker_model(model, {"layer0": (4, 2), "layer2": (4, 4)})
        assert isinstance(find_module(model, "layer0"), TuckerConv2d)

    def test_direct_train_runs(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = small_conv_model()
        _, hist = direct_train_tucker(
            model, {"layer2": (4, 4)}, train_data, test_data,
            epochs=2, batch_size=16,
        )
        assert 0.0 <= hist.final_test_accuracy <= 1.0

    def test_decompose_and_finetune_runs(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = small_conv_model()
        train_model(model, train_data, epochs=2, batch_size=16, seed=0)
        _, hist = decompose_and_finetune(
            model, {"layer2": (4, 4)}, train_data, test_data,
            epochs=1, batch_size=16,
        )
        assert 0.0 <= hist.final_test_accuracy <= 1.0


class TestBudgetSearch:
    def _sites(self, tiny_dataset):
        model = build_model("resnet_tiny", num_classes=4, seed=0)
        return trace_conv_sites(model, (8, 8))

    def test_ranks_meet_budget(self, tiny_dataset):
        sites = self._sites(tiny_dataset)
        for budget in (0.3, 0.5, 0.7):
            rank_map = uniform_tucker_ranks_for_budget(sites, budget)
            achieved = achieved_tucker_reduction(sites, rank_map)
            assert achieved >= budget - 0.02

    def test_higher_budget_smaller_ranks(self, tiny_dataset):
        sites = self._sites(tiny_dataset)
        light = uniform_tucker_ranks_for_budget(sites, 0.3)
        heavy = uniform_tucker_ranks_for_budget(sites, 0.8)
        for name in light:
            assert heavy[name][0] <= light[name][0]

    def test_invalid_budget(self, tiny_dataset):
        sites = self._sites(tiny_dataset)
        with pytest.raises(ValueError):
            uniform_tucker_ranks_for_budget(sites, 0.0)

    def test_empty_sites(self):
        with pytest.raises(ValueError):
            uniform_tucker_ranks_for_budget([], 0.5)


class TestComparators:
    def _pretrained(self, tiny_dataset):
        train_data, test_data = tiny_dataset
        model = build_model("resnet_tiny", num_classes=4, seed=0)
        train_model(model, train_data, epochs=3, batch_size=16, seed=0)
        baseline = evaluate(model, test_data)
        sites = trace_conv_sites(model, (8, 8))
        return model, sites, train_data, test_data, baseline

    def test_std_tkd_report(self, tiny_dataset):
        model, sites, train_data, test_data, baseline = self._pretrained(tiny_dataset)
        report = StdTKDComparator().compress(
            model, sites, train_data, test_data,
            budget=0.5, baseline_accuracy=baseline, epochs=1, batch_size=16,
        )
        assert report.method == "Std. TKD"
        assert report.flops_reduction >= 0.45
        assert 0.0 <= report.accuracy <= 1.0

    def test_fpgm_masks_filters(self, tiny_dataset):
        model, sites, train_data, test_data, baseline = self._pretrained(tiny_dataset)
        report = FPGMComparator().compress(
            model, sites, train_data, test_data,
            budget=0.5, baseline_accuracy=baseline, epochs=1, batch_size=16,
        )
        # Some filters are exactly zero after masked finetuning.
        zero_filters = 0
        for s in sites:
            norms = np.linalg.norm(
                s.layer.weight.data.reshape(s.layer.weight.data.shape[0], -1),
                axis=1,
            )
            zero_filters += int(np.sum(norms == 0.0))
        assert zero_filters > 0
        assert report.flops_reduction > 0.2

    def test_fpgm_median_distances(self, rng):
        w = rng.standard_normal((5, 3, 3, 3))
        d = FPGMComparator.median_distances(w)
        assert d.shape == (5,)
        assert np.all(d >= 0)

    def test_tdc_comparator_produces_tucker_model(self, tiny_dataset):
        model, sites, train_data, test_data, baseline = self._pretrained(tiny_dataset)
        report = TDCComparator().compress(
            model, sites, train_data, test_data,
            budget=0.5, baseline_accuracy=baseline, epochs=2, batch_size=16,
        )
        n_tucker = sum(
            1 for _, m in model.named_modules() if isinstance(m, TuckerConv2d)
        )
        assert n_tucker == len(report.rank_map) > 0
        assert report.flops_reduction >= 0.45
