"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import make_cifar_like
from repro.gpusim.device import A100, RTX2080TI


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(params=["A100", "2080Ti"])
def device(request):
    return {"A100": A100, "2080Ti": RTX2080TI}[request.param]


@pytest.fixture
def a100():
    return A100


@pytest.fixture
def rtx2080ti():
    return RTX2080TI


@pytest.fixture(scope="session")
def tiny_dataset():
    """Small synthetic dataset shared across training tests."""
    return make_cifar_like(
        n_train=96, n_test=48, image_size=8, num_classes=4, seed=0
    )


@pytest.fixture
def count_allocations():
    """Shared numpy-allocation counter backed by ``repro.analysis``.

    Replaces the per-file monkeypatching counters that used to live in
    test_executable/test_fused/test_runtime: ``count_allocations(fn)``
    runs ``fn`` under the tracer and returns only the nonzero counts,
    so a clean hot path compares equal to ``{}``.
    """
    from repro.analysis.dynamic import count_allocations as impl

    return impl
