"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    Dataset,
    SyntheticImageClassification,
    batches,
    make_cifar_like,
    make_tiny_imagenet_like,
    train_val_split,
)


class TestDataset:
    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Dataset(rng.standard_normal((4, 3, 8)), np.zeros(4, dtype=int))

    def test_label_length_validation(self, rng):
        with pytest.raises(ValueError):
            Dataset(rng.standard_normal((4, 3, 8, 8)), np.zeros(3, dtype=int))

    def test_num_classes(self, rng):
        ds = Dataset(rng.standard_normal((4, 1, 2, 2)), np.array([0, 2, 1, 2]))
        assert ds.num_classes == 3


class TestGenerator:
    def test_determinism(self):
        task = SyntheticImageClassification(seed=3)
        a = task.sample(16, seed=5)
        b = SyntheticImageClassification(seed=3).sample(16, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        task = SyntheticImageClassification(seed=3)
        a = task.sample(16, seed=5)
        b = task.sample(16, seed=6)
        assert not np.allclose(a.images, b.images)

    def test_normalization(self):
        ds = SyntheticImageClassification(seed=0).sample(64, seed=1)
        assert abs(float(ds.images.mean())) < 1e-8
        assert float(ds.images.std()) == pytest.approx(1.0, abs=1e-6)

    def test_all_classes_represented(self):
        ds = SyntheticImageClassification(num_classes=4, seed=0).sample(200, seed=1)
        assert set(np.unique(ds.labels)) == {0, 1, 2, 3}

    def test_class_signal_exists(self):
        """Same-class mean images are more similar than cross-class."""
        task = SyntheticImageClassification(num_classes=2, noise=0.1, seed=0)
        ds = task.sample(200, seed=1)
        m0 = ds.images[ds.labels == 0].mean(axis=0)
        m1 = ds.images[ds.labels == 1].mean(axis=0)
        assert np.linalg.norm(m0 - m1) > 0.05

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            SyntheticImageClassification(noise=-1.0)

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=10, deadline=None)
    def test_sample_count(self, n):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(n, seed=0)
        assert len(ds) == n


class TestFactories:
    def test_cifar_like_shapes(self):
        train, test = make_cifar_like(n_train=32, n_test=16, image_size=10)
        assert train.images.shape == (32, 3, 10, 10)
        assert test.images.shape == (16, 3, 10, 10)

    def test_tiny_imagenet_like(self):
        train, test = make_tiny_imagenet_like(
            n_train=16, n_test=8, image_size=12, num_classes=5
        )
        assert train.images.shape[2] == 12
        assert train.labels.max() < 5

    def test_train_test_disjoint_streams(self):
        train, test = make_cifar_like(n_train=16, n_test=16, image_size=8)
        assert not np.allclose(train.images, test.images)


class TestSplitAndBatches:
    def test_split_sizes(self):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(20, seed=0)
        tr, va = train_val_split(ds, val_fraction=0.25, seed=0)
        assert len(tr) == 15 and len(va) == 5

    def test_split_validation(self):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(8, seed=0)
        with pytest.raises(ValueError):
            train_val_split(ds, val_fraction=1.5)

    def test_batches_cover_dataset(self):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(10, seed=0)
        seen = 0
        for x, y in batches(ds, 4, seed=0):
            seen += len(y)
            assert x.shape[0] == y.shape[0]
        assert seen == 10

    def test_batches_shuffle_determinism(self):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(12, seed=0)
        b1 = [y for _, y in batches(ds, 4, seed=9)]
        b2 = [y for _, y in batches(ds, 4, seed=9)]
        for a, b in zip(b1, b2):
            np.testing.assert_array_equal(a, b)

    def test_batches_no_shuffle_order(self):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(8, seed=0)
        ys = np.concatenate([y for _, y in batches(ds, 3, shuffle=False)])
        np.testing.assert_array_equal(ys, ds.labels)

    def test_invalid_batch_size(self):
        ds = SyntheticImageClassification(image_size=6, seed=0).sample(8, seed=0)
        with pytest.raises(ValueError):
            list(batches(ds, 0))
