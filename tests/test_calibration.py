"""Hardware calibration: measured-vs-predicted loop closure.

Covers the tentpole subsystem: shape classes, factor fitting/merging,
``CalibratedDevice`` transparency through the planners, the versioned
persistence round-trip, and the acceptance property that calibrated
predictions beat raw analytical ones against measured wall time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend
from repro.calibration import (
    AUX_BACKEND,
    AUX_CLASS,
    CalibratedDevice,
    CalibrationFactor,
    calibration_cache,
    run_calibration,
    shape_class,
    store_calibration,
)
from repro.codesign.pipeline import decompose_for_device
from repro.gpusim.device import A100, RTX2080TI
from repro.inference import compile_model, estimate_e2e, plan_model
from repro.kernels.base import ConvShape
from repro.models.arch_specs import get_model_spec
from repro.models.registry import build_model
from repro.planning.cache import PlanCache

IMAGE_HW = (8, 8)


@pytest.fixture(autouse=True)
def _clean_calibration_cache():
    """Keep the process-wide calibration store out of other tests."""
    calibration_cache().clear()
    yield
    calibration_cache().clear()


@pytest.fixture(scope="module")
def calibrated_setup():
    """One compiled executable + its calibration run (module-cached)."""
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=0.5, rank_step=2)
    model.eval()
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=1, model_name="resnet_tiny",
    )
    run = run_calibration(exe, warmup=1, repeats=3)
    return model, exe, run


# ---------------------------------------------------------------------------
# Shape classes and factors
# ---------------------------------------------------------------------------

def test_shape_class_groups_by_filter_and_size():
    a = ConvShape(c=16, n=16, h=8, w=8, r=3, s=3)
    same = ConvShape(c=16, n=16, h=8, w=8, r=3, s=3)
    bigger = ConvShape(c=256, n=256, h=32, w=32, r=3, s=3)
    pointwise = ConvShape(c=16, n=16, h=8, w=8, r=1, s=1)
    assert shape_class(a) == shape_class(same)
    assert shape_class(a) != shape_class(bigger)
    assert shape_class(a) != shape_class(pointwise)
    assert shape_class(a).startswith("3x3/")


def test_factor_fitting_and_merge():
    f = CalibrationFactor.from_sums(2.0, 6.0, 3)
    assert f.factor == pytest.approx(3.0)
    merged = f.merged(CalibrationFactor.from_sums(2.0, 2.0, 1))
    assert merged.factor == pytest.approx(8.0 / 4.0)
    assert merged.n_samples == 4
    with pytest.raises(ValueError, match="positive"):
        CalibrationFactor.from_sums(0.0, 1.0, 1)
    with pytest.raises(ValueError, match="finite and positive"):
        CalibrationFactor(factor=-1.0, n_samples=1, predicted_s=1.0,
                          measured_s=1.0)


def test_plan_cache_replace_overwrites():
    cache = PlanCache("replace-test", maxsize=4, register=False)
    cache.put(("k",), 1)
    assert cache.put(("k",), 2) == 1          # put-if-absent keeps 1
    assert cache.replace(("k",), 2) == 2      # replace overwrites
    assert cache.peek(("k",)) == 2


# ---------------------------------------------------------------------------
# The calibration run
# ---------------------------------------------------------------------------

def test_run_measures_every_bound_core(calibrated_setup):
    _, exe, run = calibrated_setup
    planned_cores = [
        k for k in exe.plan.kernels if k.kind in ("core", "conv")
    ]
    assert len(run.samples) == len(planned_cores)
    assert {s.backend for s in run.samples} <= set(
        k.backend or "cudnn" for k in planned_cores
    )
    for sample in run.samples:
        assert sample.predicted_s > 0
        assert sample.measured_s > 0
        assert sample.shape_class == shape_class(sample.shape)
    assert run.total_measured_s > 0
    assert run.core_measured_s == pytest.approx(
        sum(s.measured_s for s in run.samples)
    )
    factors = run.factors()
    assert (AUX_BACKEND, AUX_CLASS) in factors
    assert all(f.factor > 0 for f in factors.values())


def test_calibrated_device_transparent_delegation(calibrated_setup):
    _, _, run = calibrated_setup
    store_calibration(run)
    calibrated = CalibratedDevice.from_cache(A100)
    assert calibrated.is_calibrated
    assert calibrated.name == A100.name
    assert calibrated.n_sms == A100.n_sms
    # Same fingerprint by design: only reported latencies change, so
    # the memoized tiling/table/tuning state stays shared and hot.
    assert calibrated.fingerprint() == A100.fingerprint()
    # Nesting never stacks wrappers.
    assert CalibratedDevice(calibrated).base_spec is A100


def test_uncalibrated_wrapper_plans_identically(calibrated_setup):
    model, _, _ = calibrated_setup
    empty = CalibratedDevice(A100)
    assert not empty.is_calibrated
    raw = plan_model(model, A100, IMAGE_HW, core_backend="auto",
                     model_name="m")
    wrapped = plan_model(model, empty, IMAGE_HW, core_backend="auto",
                         model_name="m")
    assert [k.latency for k in raw.kernels] == [
        k.latency for k in wrapped.kernels
    ]
    assert [k.backend for k in raw.kernels] == [
        k.backend for k in wrapped.kernels
    ]


def test_calibrated_latency_protocol(calibrated_setup):
    _, _, run = calibrated_setup
    store_calibration(run)
    calibrated = CalibratedDevice.from_cache(A100)
    sample = run.samples[0]
    backend = get_backend(sample.backend)
    raw = backend.core_latency(sample.shape, A100)
    # Plain spec: identity.
    assert backend.calibrated_latency(sample.shape, A100) == raw
    # Calibrated: scaled by exactly the stored factor.
    expected = raw * calibrated.correction_for(sample.backend, sample.shape)
    assert backend.calibrated_latency(sample.shape, calibrated) == (
        pytest.approx(expected)
    )
    assert expected != raw  # CPU wall vs simulated GPU: never exactly 1


def test_correction_fallback_chain():
    f = CalibrationFactor.from_sums(1.0, 4.0, 2)
    aux = CalibrationFactor.from_sums(1.0, 2.0, 1)
    cls = shape_class(ConvShape(c=8, n=8, h=8, w=8, r=3, s=3))
    dev = CalibratedDevice(A100, {
        ("tdc-model", cls): f,
        (AUX_BACKEND, AUX_CLASS): aux,
    })
    exact = ConvShape(c=8, n=8, h=8, w=8, r=3, s=3)
    other = ConvShape(c=64, n=64, h=32, w=32, r=5, s=5)
    assert dev.correction_for("tdc-model", exact) == pytest.approx(4.0)
    # Unknown class for a known backend: pooled backend factor.
    assert dev.correction_for("tdc-model", other) == pytest.approx(4.0)
    # Unknown backend: pooled core factor.
    assert dev.correction_for("cudnn", other) == pytest.approx(4.0)
    assert dev.aux_correction("pointwise") == pytest.approx(2.0)
    # No factors at all: identity.
    empty = CalibratedDevice(A100)
    assert empty.correction_for("cudnn", exact) == 1.0
    assert empty.aux_correction("bn_relu") == 1.0


# ---------------------------------------------------------------------------
# Persistence round-trip
# ---------------------------------------------------------------------------

def test_calibration_round_trip_identical_plan(calibrated_setup, tmp_path):
    model, _, run = calibrated_setup
    store_calibration(run)
    reference_plan = plan_model(
        model, CalibratedDevice.from_cache(A100), IMAGE_HW,
        core_backend="auto", model_name="m",
    )
    calibration_cache().save(tmp_path)
    calibration_cache().clear()
    assert not CalibratedDevice.from_cache(A100).is_calibrated

    reloaded_store = PlanCache(
        "calibration", maxsize=256,
        payload_version=calibration_cache().payload_version,
        encode=calibration_cache()._encode,
        decode=calibration_cache()._decode,
        register=False,
    )
    assert reloaded_store.load(tmp_path) == len(run.factors())
    reloaded = CalibratedDevice.from_cache(A100, cache=reloaded_store)
    replanned = plan_model(model, reloaded, IMAGE_HW, core_backend="auto",
                           model_name="m")
    assert [(k.layer, k.backend, k.latency) for k in reference_plan.kernels] \
        == [(k.layer, k.backend, k.latency) for k in replanned.kernels]


# ---------------------------------------------------------------------------
# End-to-end integration + the acceptance property
# ---------------------------------------------------------------------------

def test_estimate_e2e_accepts_calibrated_device(calibrated_setup):
    _, _, run = calibrated_setup
    store_calibration(run)
    calibrated = CalibratedDevice.from_cache(A100)
    spec = get_model_spec("resnet18")
    raw = estimate_e2e(spec, A100, backends=("tdc-model",))
    cal = estimate_e2e(spec, calibrated, backends=("tdc-model",))
    assert set(cal.variants) == set(raw.variants)
    assert all(v > 0 for v in cal.variants.values())
    # The rank plan is shape-driven (same fingerprint, same tables):
    # calibration rescales latencies without changing the compression.
    assert len(cal.rank_plan.decisions) == len(raw.rank_plan.decisions)


def test_recalibration_converges_instead_of_oscillating(calibrated_setup):
    """Fitting against an already-calibrated plan must invert the old
    correction: factors stay ~stable across repeated calibration, and
    predictions never collapse back to the raw analytical values."""
    from repro.inference import compile_plan

    model, exe, run = calibrated_setup
    raw_total = exe.predicted_latency()
    store_calibration(run, merge=False)
    calibrated1 = CalibratedDevice.from_cache(A100)
    plan1 = plan_model(model, calibrated1, IMAGE_HW, core_backend="auto",
                       model_name="resnet_tiny")
    exe1 = compile_plan(plan1, model, calibrated1, image_hw=IMAGE_HW,
                        max_batch=1)
    # Second pass measures the *calibrated* executable.
    run2 = run_calibration(exe1, warmup=1, repeats=3)
    # The fitted predicted sums are raw analytical again, not raw*f1
    # (auto dispatch may pick different backends under corrected
    # latencies, so totals match loosely — but nowhere near the
    # calibrated total, which is an order of magnitude larger).
    assert run2.total_predicted_s == pytest.approx(raw_total, rel=0.5)
    assert run2.total_predicted_s < 0.5 * plan1.total_latency()
    store_calibration(run2, merge=False)
    plan2 = plan_model(model, CalibratedDevice.from_cache(A100), IMAGE_HW,
                       core_backend="auto", model_name="resnet_tiny")
    # Double-correction would put plan2 back at ~raw_total (an order
    # of magnitude low); convergence keeps it in measured territory.
    assert plan2.total_latency() > 5 * raw_total
    ratio = plan2.total_latency() / plan1.total_latency()
    assert 0.2 < ratio < 5.0


def test_calibrate_executable_front_door(calibrated_setup):
    from repro.calibration import calibrate_executable

    _, exe, _ = calibrated_setup
    cache = PlanCache("front-door", maxsize=64, register=False)
    calibrated = calibrate_executable(exe, warmup=1, repeats=2, cache=cache)
    assert calibrated.is_calibrated
    assert calibrated.n_factors == len(cache)
    assert calibrated.base_spec is A100


def test_calibrated_vs_measured_default_backends():
    """The e2e --calibrated path with its default backend list."""
    from repro.experiments.e2e import calibrated_vs_measured

    table = calibrated_vs_measured(
        A100, models=("resnet_tiny",), repeats=2
    )
    rendered = table.render()
    assert "cal err" in rendered
    assert "resnet_tiny" in rendered


@pytest.mark.parametrize("device", [A100, RTX2080TI], ids=lambda d: d.name)
def test_calibrated_prediction_beats_raw(device):
    """The acceptance criterion, in-suite on one preset per device."""
    model = build_model("resnet_tiny", seed=0)
    try:
        decompose_for_device(model, device, IMAGE_HW, budget=0.5,
                             rank_step=2)
    except ValueError:
        pass  # θ rule decomposed nothing on this device: calibrate dense
    model.eval()
    exe = compile_model(
        model, device, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=1, model_name="resnet_tiny",
    )
    cache = PlanCache("calibration-local", maxsize=256, register=False)
    run = run_calibration(exe, warmup=1, repeats=3)
    store_calibration(run, cache=cache)
    calibrated = CalibratedDevice.from_cache(device, cache=cache)
    cal_plan = plan_model(model, calibrated, IMAGE_HW, core_backend="auto",
                          model_name="resnet_tiny")
    x = np.random.default_rng(1).standard_normal((1, 3) + IMAGE_HW)
    measured = exe.measure(x, repeats=3)
    raw_err = abs(exe.predicted_latency() - measured) / measured
    cal_err = abs(cal_plan.total_latency() - measured) / measured
    assert cal_err < raw_err
