"""Gradient checks and behaviour tests for every layer type."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    TuckerConv2d,
)
from repro.nn.gradcheck import check_module_gradients
from repro.nn.module import Parameter


class TestGradients:
    """Finite-difference validation of every layer's backward pass."""

    def test_conv2d(self, rng):
        check_module_gradients(
            Conv2d(3, 4, 3, padding=1, seed=0), rng.standard_normal((2, 3, 5, 5))
        )

    def test_conv2d_strided_no_bias(self, rng):
        check_module_gradients(
            Conv2d(2, 3, 3, stride=2, padding=1, bias=False, seed=0),
            rng.standard_normal((2, 2, 6, 6)),
        )

    def test_tucker_conv(self, rng):
        check_module_gradients(
            TuckerConv2d(4, 6, 3, rank_in=2, rank_out=3, padding=1, seed=0),
            rng.standard_normal((2, 4, 5, 5)),
        )

    def test_tucker_conv_strided(self, rng):
        check_module_gradients(
            TuckerConv2d(3, 4, 3, rank_in=2, rank_out=2, stride=2, padding=1,
                         seed=0),
            rng.standard_normal((1, 3, 6, 6)),
        )

    def test_linear(self, rng):
        check_module_gradients(Linear(6, 4, seed=0), rng.standard_normal((3, 6)))

    def test_relu(self, rng):
        check_module_gradients(ReLU(), rng.standard_normal((2, 3, 4, 4)) + 0.05)

    def test_batchnorm(self, rng):
        check_module_gradients(
            BatchNorm2d(3), rng.standard_normal((4, 3, 5, 5)), atol=1e-4, rtol=1e-3
        )

    def test_maxpool(self, rng):
        check_module_gradients(MaxPool2d(2, 2), rng.standard_normal((2, 2, 6, 6)))

    def test_avgpool(self, rng):
        check_module_gradients(AvgPool2d(2, 2), rng.standard_normal((2, 2, 6, 6)))

    def test_global_avgpool(self, rng):
        check_module_gradients(GlobalAvgPool2d(), rng.standard_normal((2, 3, 4, 4)))

    def test_flatten(self, rng):
        check_module_gradients(Flatten(), rng.standard_normal((2, 3, 2, 2)))

    def test_sequential_chain(self, rng):
        model = Sequential(
            Conv2d(2, 3, 3, padding=1, seed=0), ReLU(),
            Conv2d(3, 2, 3, padding=1, seed=1),
        )
        check_module_gradients(model, rng.standard_normal((1, 2, 5, 5)))


class TestConv2d:
    def test_output_shape_helper(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1)
        assert conv.output_shape(8, 8) == (4, 4)

    def test_flops_formula(self):
        conv = Conv2d(3, 8, 3, padding=1)
        assert conv.flops(4, 4) == 2 * 4 * 4 * 8 * 3 * 9

    def test_bias_applied(self, rng):
        conv = Conv2d(2, 3, 1, bias=True, seed=0)
        conv.weight.data[...] = 0.0
        conv.bias.data[...] = [1.0, 2.0, 3.0]
        y = conv.forward(rng.standard_normal((1, 2, 2, 2)))
        np.testing.assert_allclose(y[0, :, 0, 0], [1, 2, 3])

    def test_backward_before_forward_raises(self, rng):
        conv = Conv2d(2, 3, 3)
        with pytest.raises(RuntimeError):
            conv.backward(rng.standard_normal((1, 3, 2, 2)))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Conv2d(0, 3, 3)
        with pytest.raises(ValueError):
            Conv2d(3, 3, 3, padding=-1)


class TestTuckerConv2d:
    def test_equivalence_at_full_rank(self, rng):
        conv = Conv2d(5, 7, 3, padding=1, seed=0)
        tucker = TuckerConv2d.from_conv(conv, rank_out=7, rank_in=5)
        x = rng.standard_normal((2, 5, 6, 6))
        np.testing.assert_allclose(
            tucker.forward(x), conv.forward(x), atol=1e-10
        )

    def test_equivalence_reconstructed_kernel(self, rng):
        tucker = TuckerConv2d(4, 6, 3, rank_in=2, rank_out=3, padding=1,
                              bias=False, seed=0)
        x = rng.standard_normal((1, 4, 5, 5))
        dense = Conv2d(4, 6, 3, padding=1, bias=False, seed=0)
        dense.weight.data[...] = tucker.to_conv_weight()
        np.testing.assert_allclose(
            tucker.forward(x), dense.forward(x), atol=1e-10
        )

    def test_low_rank_approximates_original(self, rng):
        conv = Conv2d(8, 8, 3, padding=1, seed=0)
        # Make the kernel genuinely low rank.
        from repro.tensor.tucker import tucker2_project
        conv.weight.data[...] = tucker2_project(conv.weight.data, 3, 3)
        tucker = TuckerConv2d.from_conv(conv, rank_out=3, rank_in=3)
        x = rng.standard_normal((1, 8, 6, 6))
        np.testing.assert_allclose(tucker.forward(x), conv.forward(x), atol=1e-8)

    def test_flops_less_than_dense(self):
        dense = Conv2d(32, 32, 3, padding=1)
        tucker = TuckerConv2d(32, 32, 3, rank_in=8, rank_out=8, padding=1)
        assert tucker.flops(16, 16) < dense.flops(16, 16)

    def test_param_count(self):
        t = TuckerConv2d(16, 24, 3, rank_in=4, rank_out=6)
        assert t.n_weight_params() == 4 * 16 + 6 * 4 * 9 + 24 * 6

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            TuckerConv2d(4, 4, 3, rank_in=5, rank_out=2)
        with pytest.raises(ValueError):
            TuckerConv2d(4, 4, 3, rank_in=2, rank_out=5)

    def test_bias_transfer(self, rng):
        conv = Conv2d(4, 5, 3, padding=1, bias=True, seed=0)
        conv.bias.data[...] = rng.standard_normal(5)
        tucker = TuckerConv2d.from_conv(conv, rank_out=5, rank_in=4)
        np.testing.assert_array_equal(tucker.bias.data, conv.bias.data)


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm2d(3)
        x = 5.0 + 2.0 * rng.standard_normal((8, 3, 6, 6))
        y = bn.forward(x)
        assert abs(float(y.mean())) < 1e-8
        assert float(y.var()) == pytest.approx(1.0, abs=0.05)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        for _ in range(30):
            bn.forward(3.0 + rng.standard_normal((16, 2, 4, 4)))
        np.testing.assert_allclose(bn.running_mean, [3.0, 3.0], atol=0.2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.forward(rng.standard_normal((8, 2, 4, 4)))
        bn.eval()
        x = rng.standard_normal((2, 2, 4, 4))
        y1 = bn.forward(x)
        y2 = bn.forward(x)
        np.testing.assert_array_equal(y1, y2)

    def test_eval_backward_raises(self, rng):
        bn = BatchNorm2d(2)
        bn.eval()
        bn.forward(rng.standard_normal((2, 2, 3, 3)))
        with pytest.raises(RuntimeError):
            bn.backward(rng.standard_normal((2, 2, 3, 3)))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(3).forward(rng.standard_normal((2, 4, 3, 3)))


class TestDropout:
    def test_eval_is_identity(self, rng):
        d = Dropout(0.5, seed=0)
        d.eval()
        x = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(d.forward(x), x)

    def test_training_scales(self, rng):
        d = Dropout(0.5, seed=0)
        x = np.ones((2000,))
        y = d.forward(x)
        kept = y[y > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (y > 0).mean() < 0.6

    def test_zero_p_identity(self, rng):
        d = Dropout(0.0)
        x = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(d.forward(x), x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleSystem:
    def test_parameter_registration(self):
        lin = Linear(3, 2)
        names = [n for n, _ in lin.named_parameters()]
        assert names == ["weight", "bias"]

    def test_nested_names(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        names = [n for n, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer2.bias" in names

    def test_n_params(self):
        assert Linear(3, 2).n_params() == 3 * 2 + 2

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        lin = Linear(3, 2)
        lin.forward(rng.standard_normal((2, 3)))
        lin.backward(rng.standard_normal((2, 2)))
        assert np.any(lin.weight.grad != 0)
        lin.zero_grad()
        assert np.all(lin.weight.grad == 0)

    def test_state_dict_roundtrip(self, rng):
        m1 = Sequential(Conv2d(2, 3, 3, seed=0), BatchNorm2d(3))
        m1.forward(rng.standard_normal((4, 2, 5, 5)))  # move running stats
        state = m1.state_dict()
        m2 = Sequential(Conv2d(2, 3, 3, seed=9), BatchNorm2d(3))
        m2.load_state_dict(state)
        x = rng.standard_normal((1, 2, 5, 5))
        m1.eval(); m2.eval()
        np.testing.assert_allclose(m1.forward(x), m2.forward(x), atol=1e-12)

    def test_state_dict_unknown_key(self):
        with pytest.raises(KeyError):
            Linear(2, 2).load_state_dict({"nope": np.zeros(2)})

    def test_state_dict_shape_mismatch(self):
        lin = Linear(2, 2)
        with pytest.raises(ValueError):
            lin.load_state_dict({"weight": np.zeros((3, 3)),
                                 "bias": np.zeros(2)})

    def test_sequential_replace(self, rng):
        model = Sequential(Linear(3, 3), ReLU())
        model.replace(0, Linear(3, 3, seed=5))
        assert isinstance(model[0], Linear)

    def test_identity(self, rng):
        x = rng.standard_normal((2, 2))
        ident = Identity()
        np.testing.assert_array_equal(ident.forward(x), x)
        np.testing.assert_array_equal(ident.backward(x), x)

    def test_requires_grad_false_skips_accumulation(self, rng):
        p = Parameter(np.zeros((2, 2)), requires_grad=False)
        p.accumulate(np.ones((2, 2)))
        assert np.all(p.grad == 0)
