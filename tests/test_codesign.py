"""Tests for FLOPs accounting, the performance table, and Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codesign.flops import (
    LayerBudget,
    achieved_reduction,
    conv_flops,
    conv_params,
    flops_reduction_ratio,
    param_reduction_ratio,
    tucker_flops,
    tucker_params,
)
from repro.codesign.pipeline import layer_shapes_from_spec
from repro.codesign.rank_selection import LayerShape, select_ranks
from repro.codesign.table import (
    build_performance_table,
    clear_table_cache,
    rank_candidates,
)
from repro.gpusim.device import A100
from repro.models.arch_specs import get_model_spec


class TestFlopsFormulas:
    def test_conv_flops(self):
        assert conv_flops(64, 32, 56, 56) == 2 * 56 * 56 * 64 * 32 * 9

    def test_tucker_flops_three_stages(self):
        got = tucker_flops(64, 32, 56, 56, d1=16, d2=8)
        expected = (
            2 * 56 * 56 * 64 * 16
            + 2 * 56 * 56 * 9 * 16 * 8
            + 2 * 56 * 56 * 32 * 8
        )
        assert got == expected

    def test_param_reduction_eq5(self):
        gamma = param_reduction_ratio(c=64, n=64, d1=16, d2=16)
        expected = (64 * 64 * 9) / (64 * 16 + 9 * 16 * 16 + 64 * 16)
        assert gamma == pytest.approx(expected)

    def test_flops_reduction_eq6_full_rank_below_one(self):
        # Full-rank Tucker has MORE flops than dense (3 stages).
        gamma = flops_reduction_ratio(32, 32, 14, 14, d1=32, d2=32)
        assert gamma < 1.0

    @given(st.integers(1, 16), st.integers(1, 16))
    @settings(max_examples=20, deadline=None)
    def test_reduction_monotone_in_ranks(self, d1, d2):
        g1 = flops_reduction_ratio(32, 32, 14, 14, d1=d1, d2=d2)
        g2 = flops_reduction_ratio(32, 32, 14, 14, d1=d1 + 1, d2=d2)
        assert g2 <= g1 + 1e-12

    def test_achieved_reduction(self):
        assert achieved_reduction(100, 40) == pytest.approx(0.6)

    def test_layer_budget_validation(self):
        with pytest.raises(ValueError):
            LayerBudget(dense_flops=0, target_reduction=0.5)
        with pytest.raises(ValueError):
            LayerBudget(dense_flops=10, target_reduction=1.0)

    def test_layer_budget_ceiling(self):
        b = LayerBudget(dense_flops=1000, target_reduction=0.6)
        assert b.max_tucker_flops == pytest.approx(400.0)


class TestPerformanceTable:
    def test_rank_candidates_step(self):
        assert rank_candidates(128, 32) == [32, 64, 96]
        assert rank_candidates(64, 32) == [32]
        assert rank_candidates(16, 32) == [8]  # fallback for slim models

    def test_rank_candidates_extent_one_not_decomposable(self):
        # Rank 1 == the original extent: zero reduction plus two extra
        # 1x1 launches.  No candidates at all.
        assert rank_candidates(1, 32) == []
        # extent 2 still has a genuine reduction (rank 1 < 2).
        assert rank_candidates(2, 32) == [1]

    def test_table_empty_for_extent_one_layer(self):
        table = build_performance_table(1, 64, 14, 14, A100)
        assert table.entries == []
        assert not table.decomposable
        assert table.best_under_budget(float("inf")) is None

    def test_select_ranks_leaves_extent_one_layer_dense(self):
        layers = [
            LayerShape("slim", 1, 64, 14, 14),
            LayerShape("ok", 128, 128, 14, 14),
        ]
        plan = select_ranks(layers, A100, budget=0.6)
        by_name = {d.layer.name: d for d in plan.decisions}
        assert not by_name["slim"].decomposed
        assert by_name["slim"].reason == "not_decomposable"
        assert by_name["slim"].compressed_flops == by_name["slim"].dense_flops

    def test_table_entries_cover_grid(self):
        clear_table_cache()
        table = build_performance_table(64, 64, 14, 14, A100, rank_step=32)
        assert len(table.entries) == 1  # only (32, 32)
        e = table.lookup(32, 32)
        assert e.total_latency == pytest.approx(
            e.pw1_latency + e.core_latency + e.pw2_latency
        )

    def test_table_cache_hit(self):
        clear_table_cache()
        t1 = build_performance_table(64, 64, 14, 14, A100)
        t2 = build_performance_table(64, 64, 14, 14, A100)
        assert t1 is t2

    def test_budget_filter(self):
        table = build_performance_table(128, 128, 14, 14, A100, rank_step=32)
        all_entries = table.candidates_within(float("inf"))
        tight = table.candidates_within(min(e.flops for e in all_entries))
        assert len(tight) == 1

    def test_best_under_budget_respects_ceiling(self):
        table = build_performance_table(128, 128, 14, 14, A100, rank_step=32)
        ceiling = 0.4 * table.original_flops
        best = table.best_under_budget(ceiling)
        assert best is not None and best.flops <= ceiling

    def test_best_under_budget_none_when_impossible(self):
        table = build_performance_table(64, 64, 14, 14, A100, rank_step=32)
        assert table.best_under_budget(0.0) is None

    def test_plateau_prefers_larger_ranks(self):
        """Among near-tied latencies the largest ranks win (Alg. 1)."""
        table = build_performance_table(256, 256, 14, 14, A100, rank_step=32)
        best = table.best_under_budget(float("inf"), latency_tolerance=1e9)
        biggest = max(table.entries, key=lambda e: e.d1 + e.d2)
        assert (best.d1, best.d2) == (biggest.d1, biggest.d2)

    def test_lookup_missing_raises(self):
        table = build_performance_table(64, 64, 14, 14, A100)
        with pytest.raises(KeyError):
            table.lookup(1, 1)

    def test_lookup_index_matches_linear_scan(self):
        table = build_performance_table(256, 256, 14, 14, A100, rank_step=32)
        for e in table.entries:
            found = table.lookup(e.d1, e.d2)
            linear = next(
                x for x in table.entries if x.d1 == e.d1 and x.d2 == e.d2
            )
            assert found is linear


def toy_layers():
    return [
        LayerShape("conv1", 64, 64, 28, 28),
        LayerShape("conv2", 128, 128, 14, 14),
        LayerShape("conv3", 256, 256, 7, 7),
    ]


class TestRankSelection:
    def test_plan_structure(self):
        plan = select_ranks(toy_layers(), A100, budget=0.6)
        assert len(plan.decisions) == 3
        for d in plan.decisions:
            if d.decomposed:
                assert d.d1 >= 1 and d.d2 >= 1
                assert d.compressed_flops < d.dense_flops
            else:
                assert d.compressed_flops == d.dense_flops

    def test_budget_roughly_met(self):
        plan = select_ranks(toy_layers(), A100, budget=0.6)
        # Achieved reduction within a sensible band around the budget.
        assert plan.achieved_reduction >= 0.4

    def test_theta_zero_decomposes_more(self):
        relaxed = select_ranks(toy_layers(), A100, budget=0.6, theta=0.0)
        strict = select_ranks(toy_layers(), A100, budget=0.6, theta=0.9)
        n_relaxed = sum(1 for d in relaxed.decisions if d.decomposed)
        n_strict = sum(1 for d in strict.decisions if d.decomposed)
        assert n_relaxed >= n_strict

    def test_extreme_theta_skips_everything(self):
        plan = select_ranks(toy_layers(), A100, budget=0.6, theta=0.999)
        assert all(not d.decomposed for d in plan.decisions)
        assert plan.achieved_reduction == 0.0
        # Skipped layers cost their original latency.
        assert plan.total_latency == pytest.approx(plan.total_original_latency)

    def test_speedup_positive_when_decomposed(self):
        plan = select_ranks(toy_layers(), A100, budget=0.6, theta=0.15)
        if any(d.decomposed for d in plan.decisions):
            assert plan.speedup() > 1.0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            select_ranks(toy_layers(), A100, budget=0.0)
        with pytest.raises(ValueError):
            select_ranks(toy_layers(), A100, budget=1.0)

    def test_invalid_max_layer_reduction_raises(self):
        for bad in (0.0, -0.5, 1.0, 1.5):
            with pytest.raises(ValueError):
                select_ranks(
                    toy_layers(), A100, budget=0.6, max_layer_reduction=bad
                )

    def test_max_layer_reduction_floored_at_budget(self):
        # A cap below the budget is unsatisfiable per-layer; it is
        # clamped up to the budget (documented), not an error.
        capped = select_ranks(
            toy_layers(), A100, budget=0.6, max_layer_reduction=0.3
        )
        floored = select_ranks(
            toy_layers(), A100, budget=0.6, max_layer_reduction=0.6
        )
        assert capped.ranks() == floored.ranks()

    def test_empty_layers(self):
        with pytest.raises(ValueError):
            select_ranks([], A100, budget=0.5)

    def test_budget_redistribution_on_skip(self):
        """A skipped first layer pushes extra reduction onto later ones."""
        layers = toy_layers()
        with_skip = select_ranks(layers, A100, budget=0.5, theta=0.999)
        assert all(not d.decomposed for d in with_skip.decisions)

    def test_deterministic(self):
        p1 = select_ranks(toy_layers(), A100, budget=0.6)
        p2 = select_ranks(toy_layers(), A100, budget=0.6)
        assert p1.ranks() == p2.ranks()


class TestSpecIntegration:
    def test_layer_shapes_from_spec(self):
        spec = get_model_spec("resnet18")
        layers = layer_shapes_from_spec(spec)
        assert len(layers) == 16
        # Strided convs hand the output resolution to the kernel.
        by_name = {l.name: l for l in layers}
        assert by_name["layer2.0.conv1"].h == 28

    def test_resnet18_plan_end_to_end(self):
        spec = get_model_spec("resnet18")
        plan = select_ranks(
            layer_shapes_from_spec(spec), A100, budget=0.65,
        )
        assert 0.3 <= plan.achieved_reduction <= 0.9
        assert plan.speedup() > 1.0
