"""Tests for all convolution kernel schemes.

Every scheme's functional execution is cross-checked against the
reference convolution over randomized shapes (hypothesis), and each
latency model is probed for the structural properties the paper relies
on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.device import A100, RTX2080TI
from repro.kernels.base import ConvShape, pad_input, reference_conv
from repro.kernels.cudnn import (
    CuDNNFFTKernel,
    CuDNNGemmKernel,
    CuDNNWinogradKernel,
    GemmConfig,
)
from repro.kernels.pointwise import (
    PointwiseConvKernel,
    batchnorm_relu_latency,
    fc_latency,
    memory_bound_op_latency,
    pointwise_latency,
    pooling_latency,
)
from repro.kernels.tdc_direct import (
    TDCDirectKernel,
    Tiling,
    is_feasible,
    n_blocks,
    regs_per_thread,
    smem_bytes,
)
from repro.kernels.tvm_direct import TVMDirectKernel, TVMTiling


@st.composite
def conv_cases(draw):
    c = draw(st.integers(1, 12))
    n = draw(st.integers(1, 12))
    h = draw(st.integers(3, 12))
    w = draw(st.integers(3, 12))
    seed = draw(st.integers(0, 2**31 - 1))
    return c, n, h, w, seed


def random_problem(c, n, h, w, seed, r=3, s=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((c, h, w)), rng.standard_normal((n, c, r, s))


class TestConvShape:
    def test_flops(self):
        shape = ConvShape(64, 32, 56, 56)
        assert shape.flops() == 2 * 56 * 56 * 64 * 32 * 9

    def test_padded_extent(self):
        assert ConvShape(4, 4, 10, 10, r=3, s=3).padded_h == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvShape(0, 4, 8, 8)

    def test_pad_input_roundtrip(self, rng):
        shape = ConvShape(2, 3, 5, 5)
        x = rng.standard_normal((2, 5, 5))
        xp = pad_input(x, shape)
        assert xp.shape == (2, 7, 7)
        np.testing.assert_array_equal(xp[:, 1:6, 1:6], x)

    def test_pad_input_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            pad_input(rng.standard_normal((2, 4, 4)), ConvShape(2, 3, 5, 5))


class TestTDCKernelFunctional:
    @given(conv_cases(), st.integers(1, 6), st.integers(1, 6), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, case, th, tw, tc):
        c, n, h, w, seed = case
        x, weight = random_problem(c, n, h, w, seed)
        y = TDCDirectKernel(Tiling(th, tw, tc)).run(x, weight)
        np.testing.assert_allclose(y, reference_conv(x, weight), atol=1e-9)

    def test_partial_edge_tiles(self, rng):
        """Problem size not divisible by the tile size."""
        x = rng.standard_normal((5, 9, 11))
        w = rng.standard_normal((7, 5, 3, 3))
        y = TDCDirectKernel(Tiling(4, 4, 2)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-9)

    def test_1x1_filter(self, rng):
        x = rng.standard_normal((4, 6, 6))
        w = rng.standard_normal((3, 4, 1, 1))
        y = TDCDirectKernel(Tiling(3, 3, 2)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)

    def test_5x5_filter(self, rng):
        x = rng.standard_normal((3, 8, 8))
        w = rng.standard_normal((2, 3, 5, 5))
        y = TDCDirectKernel(Tiling(4, 4, 3)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-9)


class TestTDCKernelModel:
    def test_resource_accounting(self):
        shape = ConvShape(64, 32, 56, 56)
        t = Tiling(8, 8, 16)
        assert smem_bytes(t, shape) == 16 * 10 * 10 * 4
        assert regs_per_thread(t, shape) == 64 + 9 + 16
        assert n_blocks(t, shape) == 7 * 7 * 4

    def test_launch_description(self, device):
        shape = ConvShape(64, 32, 28, 28)
        launch = TDCDirectKernel(Tiling(7, 7, 16)).launches(shape, device)[0]
        assert launch.threads_per_block == 32  # one thread per o/p channel
        assert launch.n_blocks == 4 * 4 * 4
        assert launch.syncs_per_block == 1
        assert launch.atomic_conflict_degree == 4  # C / TC

    def test_infeasible_tiling_raises(self):
        shape = ConvShape(64, 32, 56, 56)
        with pytest.raises(ValueError):
            # 16x16 accumulators exceed the register budget.
            TDCDirectKernel(Tiling(16, 16, 64)).launches(shape, A100)

    def test_too_many_output_channels_infeasible(self):
        shape = ConvShape(64, 2048, 14, 14)
        assert not is_feasible(Tiling(4, 4, 8), shape, A100)

    def test_ncrs_layout_inflates_traffic(self, device):
        shape = ConvShape(64, 32, 28, 28)
        t = Tiling(7, 7, 16)
        crsn = TDCDirectKernel(t, crsn_layout=True).launches(shape, device)[0]
        ncrs = TDCDirectKernel(t, crsn_layout=False).launches(shape, device)[0]
        assert ncrs.read_bytes > 2 * crsn.read_bytes

    def test_ncrs_layout_slower_when_memory_bound(self, device):
        # Large spatial extent -> the kernel-tensor volume (Eq. 16)
        # dominates, so the uncoalesced layout shows up in latency.
        shape = ConvShape(64, 32, 224, 224)
        t = Tiling(7, 7, 16)
        crsn = TDCDirectKernel(t, crsn_layout=True).latency(shape, device)
        ncrs = TDCDirectKernel(t, crsn_layout=False).latency(shape, device)
        assert ncrs > crsn

    def test_latency_positive(self, device):
        shape = ConvShape(32, 32, 14, 14)
        assert TDCDirectKernel(Tiling(7, 7, 8)).latency(shape, device) > 0


class TestTVMKernel:
    @given(conv_cases(), st.integers(1, 6), st.integers(1, 6), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference(self, case, th, tw, tn):
        c, n, h, w, seed = case
        x, weight = random_problem(c, n, h, w, seed)
        y = TVMDirectKernel(TVMTiling(th, tw, tn)).run(x, weight)
        np.testing.assert_allclose(y, reference_conv(x, weight), atol=1e-9)

    def test_sync_count_scales_with_c(self, device):
        l1 = TVMDirectKernel(TVMTiling(8, 8, 8)).launches(
            ConvShape(32, 32, 16, 16), device
        )[0]
        l2 = TVMDirectKernel(TVMTiling(8, 8, 8)).launches(
            ConvShape(128, 32, 16, 16), device
        )[0]
        assert l2.syncs_per_block == 4 * l1.syncs_per_block

    def test_no_c_split(self, device):
        """Grid never splits C — the limitation the paper identifies."""
        launch = TVMDirectKernel(TVMTiling(8, 8, 8)).launches(
            ConvShape(256, 32, 16, 16), device
        )[0]
        assert launch.n_blocks == 2 * 2 * 4  # (H/8)(W/8)(N/8), no C term

    def test_tuned_picks_feasible(self, device):
        shape = ConvShape(64, 32, 28, 28)
        kernel = TVMDirectKernel.tuned(shape, device)
        assert kernel.latency(shape, device) > 0

    def test_tuned_beats_bad_tiling(self, device):
        shape = ConvShape(64, 32, 28, 28)
        tuned = TVMDirectKernel.tuned(shape, device).latency(shape, device)
        bad = TVMDirectKernel(TVMTiling(1, 1, 1)).latency(shape, device)
        assert tuned <= bad


class TestCuDNNKernels:
    @given(conv_cases())
    @settings(max_examples=25, deadline=None)
    def test_gemm_matches_reference(self, case):
        c, n, h, w, seed = case
        x, weight = random_problem(c, n, h, w, seed)
        y = CuDNNGemmKernel().run(x, weight)
        np.testing.assert_allclose(y, reference_conv(x, weight), atol=1e-9)

    @given(conv_cases())
    @settings(max_examples=25, deadline=None)
    def test_winograd_matches_reference(self, case):
        c, n, h, w, seed = case
        x, weight = random_problem(c, n, h, w, seed)
        y = CuDNNWinogradKernel().run(x, weight)
        np.testing.assert_allclose(y, reference_conv(x, weight), atol=1e-8)

    @given(conv_cases())
    @settings(max_examples=25, deadline=None)
    def test_fft_matches_reference(self, case):
        c, n, h, w, seed = case
        x, weight = random_problem(c, n, h, w, seed)
        y = CuDNNFFTKernel().run(x, weight)
        np.testing.assert_allclose(y, reference_conv(x, weight), atol=1e-8)

    def test_winograd_rejects_non_3x3(self, device):
        with pytest.raises(ValueError):
            CuDNNWinogradKernel().launches(
                ConvShape(8, 8, 8, 8, r=5, s=5), device
            )

    def test_gemm_tile_quantization(self, device):
        """N=129 pads to two column tiles: double the blocks and
        padded FLOPs of N<=128 (the under-utilization mechanism)."""
        cfg = GemmConfig(128, 128, 256)
        base = CuDNNGemmKernel(cfg).launches(ConvShape(64, 64, 56, 56), device)[0]
        spill = CuDNNGemmKernel(cfg).launches(ConvShape(64, 129, 56, 56), device)[0]
        assert spill.n_blocks == 2 * base.n_blocks
        # Padded tile work is identical per block despite 2x outputs.
        assert spill.flops_per_block == base.flops_per_block

    def test_fft_dominated_by_filter_tensor_on_large_images(self, device):
        small = CuDNNFFTKernel().latency(ConvShape(64, 32, 14, 14), device)
        large = CuDNNFFTKernel().latency(ConvShape(64, 32, 224, 224), device)
        assert large > 50 * small

    def test_winograd_stage_count(self, device):
        launches = CuDNNWinogradKernel().launches(
            ConvShape(32, 32, 28, 28), device
        )
        assert len(launches) == 4  # filter, input, gemm, output


class TestPointwiseAndAux:
    @given(conv_cases())
    @settings(max_examples=20, deadline=None)
    def test_pointwise_matches_reference(self, case):
        c, n, h, w, seed = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((c, h, w))
        weight = rng.standard_normal((n, c, 1, 1))
        y = PointwiseConvKernel().run(x, weight)
        np.testing.assert_allclose(y, reference_conv(x, weight), atol=1e-10)

    def test_pointwise_rejects_3x3(self, device):
        with pytest.raises(ValueError):
            PointwiseConvKernel().launches(ConvShape(4, 4, 8, 8), device)

    def test_pointwise_latency_positive(self, device):
        assert pointwise_latency(64, 32, 56, 56, device) > 0

    def test_memory_bound_op(self, device):
        lat = memory_bound_op_latency(1e6, 1e6, device)
        assert lat > 2e6 / device.dram_bandwidth

    def test_memory_bound_validation(self, device):
        with pytest.raises(ValueError):
            memory_bound_op_latency(-1, 0, device)

    def test_pooling_latency(self, device):
        assert pooling_latency(64, 56, 56, 2, 2, device) > 0

    def test_bn_relu_latency_scales(self, device):
        small = batchnorm_relu_latency(16, 14, 14, device)
        big = batchnorm_relu_latency(512, 56, 56, device)
        assert big > small

    def test_fc_latency(self, device):
        assert fc_latency(512, 1000, device) > 0


class TestPaperStructuralClaims:
    """The headline kernel-level behaviours of Figs. 6/7."""

    def test_tdc_wins_small_shapes(self, device):
        from repro.perfmodel.tiling import select_tiling

        for (c, n, h, w) in [(64, 32, 14, 14), (96, 64, 7, 7), (32, 32, 28, 28)]:
            shape = ConvShape(c, n, h, w)
            tdc = select_tiling(shape, device, "oracle").simulated_latency
            tvm = TVMDirectKernel.tuned(shape, device).latency(shape, device)
            gemm = CuDNNGemmKernel().latency(shape, device)
            assert tdc < tvm
            assert tdc < gemm

    def test_tvm_wins_vgg_scale_shapes(self, device):
        """The paper's observed crossover on (64,32,224,224)."""
        from repro.perfmodel.tiling import select_tiling

        shape = ConvShape(64, 32, 224, 224)
        tdc = select_tiling(shape, device, "oracle").simulated_latency
        tvm = TVMDirectKernel.tuned(shape, device).latency(shape, device)
        assert tvm < tdc

    def test_fft_slowest_on_average(self, device):
        from repro.models.arch_specs import PAPER_CONV_SHAPES

        worst_count = 0
        for (c, n, h, w) in PAPER_CONV_SHAPES[:8]:
            shape = ConvShape(c, n, h, w)
            fft = CuDNNFFTKernel().latency(shape, device)
            others = [
                CuDNNGemmKernel().latency(shape, device),
                CuDNNWinogradKernel().latency(shape, device),
            ]
            if fft >= max(others):
                worst_count += 1
        assert worst_count >= 5


class TestAsymmetricFilters:
    """Edge cases: even and rectangular filters through pad_input and
    the direct schemes (asymmetric same-padding path)."""

    def test_even_filter_pad_asymmetric(self, rng):
        shape = ConvShape(2, 3, 6, 6, r=2, s=2)
        x = rng.standard_normal((2, 6, 6))
        xp = pad_input(x, shape)
        assert xp.shape == (2, 7, 7)
        # Even filters pad only on the bottom/right.
        assert np.all(xp[:, -1, :] == 0) and np.all(xp[:, :, -1] == 0)
        np.testing.assert_array_equal(xp[:, :6, :6], x)

    def test_tdc_kernel_even_filter(self, rng):
        x = rng.standard_normal((3, 7, 7))
        w = rng.standard_normal((4, 3, 2, 2))
        y = TDCDirectKernel(Tiling(3, 3, 2)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)

    def test_tdc_kernel_rectangular_filter(self, rng):
        x = rng.standard_normal((2, 8, 8))
        w = rng.standard_normal((3, 2, 1, 3))
        y = TDCDirectKernel(Tiling(4, 4, 1)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)

    def test_tvm_kernel_rectangular_filter(self, rng):
        x = rng.standard_normal((2, 6, 9))
        w = rng.standard_normal((2, 2, 3, 5))
        y = TVMDirectKernel(TVMTiling(3, 3, 2)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)

    def test_non_square_input(self, rng):
        x = rng.standard_normal((3, 5, 11))
        w = rng.standard_normal((2, 3, 3, 3))
        y = TDCDirectKernel(Tiling(2, 4, 2)).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)


class TestRunDtype:
    """Kernel ``run`` executes in the inputs' dtype: float32 stays
    float32 end to end (no silent float64 promotion), float64 is
    unchanged, and non-float inputs still promote to float64."""

    KERNEL_CASES = [
        (lambda: TDCDirectKernel(Tiling(4, 4, 3)), 3, 3),
        (lambda: TVMDirectKernel(TVMTiling(4, 4, 2)), 3, 3),
        (lambda: CuDNNGemmKernel(GemmConfig(128, 128, 256, 1)), 3, 3),
        (lambda: CuDNNWinogradKernel(), 3, 3),
        (lambda: CuDNNFFTKernel(), 3, 3),
        (lambda: PointwiseConvKernel(), 1, 1),
    ]

    KERNEL_IDS = ["tdc", "tvm", "gemm", "winograd", "fft", "pointwise"]

    @pytest.mark.parametrize("factory,r,s", KERNEL_CASES, ids=KERNEL_IDS)
    def test_float32_stays_float32(self, factory, r, s, rng):
        x = rng.standard_normal((5, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 5, r, s)).astype(np.float32)
        y = factory().run(x, w)
        assert y.dtype == np.float32
        np.testing.assert_allclose(
            y, reference_conv(x, w), rtol=1e-4, atol=1e-4
        )

    @pytest.mark.parametrize("factory,r,s", KERNEL_CASES, ids=KERNEL_IDS)
    def test_float64_unchanged(self, factory, r, s, rng):
        x = rng.standard_normal((5, 8, 8))
        w = rng.standard_normal((4, 5, r, s))
        y = factory().run(x, w)
        assert y.dtype == np.float64
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)

    def test_mixed_dtypes_promote(self, rng):
        x = rng.standard_normal((3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((2, 3, 3, 3))  # float64
        y = TDCDirectKernel(Tiling(3, 3, 2)).run(x, w)
        assert y.dtype == np.float64

    def test_integer_inputs_promote_to_float64(self):
        x = np.ones((2, 5, 5), dtype=np.int32)
        w = np.ones((2, 2, 3, 3), dtype=np.int64)
        y = TDCDirectKernel(Tiling(2, 2, 2)).run(x, w)
        assert y.dtype == np.float64
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-10)

    def test_float16_promotes_to_float32(self, rng):
        x = rng.standard_normal((3, 6, 6)).astype(np.float16)
        w = rng.standard_normal((2, 3, 3, 3)).astype(np.float16)
        y = TDCDirectKernel(Tiling(3, 3, 2)).run(x, w)
        assert y.dtype == np.float32
        np.testing.assert_allclose(
            y, reference_conv(x, w), rtol=1e-2, atol=1e-2
        )
