"""Tests for the model zoo: blocks, trainable models, full-scale specs."""

import numpy as np
import pytest

from repro.models import (
    PAPER_CONV_SHAPES,
    available_models,
    build_model,
    find_module,
    get_model_spec,
    model_conv_flops,
    replace_module,
    trace_conv_sites,
)
from repro.models.arch_specs import LayerSpec
from repro.models.blocks import BasicBlock, Bottleneck, DenseBlock, Transition
from repro.nn import Conv2d, TuckerConv2d
from repro.nn.gradcheck import check_module_gradients
from repro.nn.loss import CrossEntropyLoss


class TestBlocks:
    def test_basic_block_identity_shortcut(self, rng):
        blk = BasicBlock(8, 8, stride=1, seed=0)
        y = blk.forward(rng.standard_normal((2, 8, 6, 6)))
        assert y.shape == (2, 8, 6, 6)

    def test_basic_block_projection_shortcut(self, rng):
        blk = BasicBlock(4, 8, stride=2, seed=0)
        y = blk.forward(rng.standard_normal((2, 4, 6, 6)))
        assert y.shape == (2, 8, 3, 3)

    def test_basic_block_gradients(self, rng):
        blk = BasicBlock(3, 4, stride=2, seed=0)
        check_module_gradients(
            blk, rng.standard_normal((2, 3, 6, 6)), atol=1e-4, rtol=1e-3,
            max_entries=20,
        )

    def test_bottleneck_shapes(self, rng):
        blk = Bottleneck(8, 4, stride=1, seed=0)
        y = blk.forward(rng.standard_normal((1, 8, 5, 5)))
        assert y.shape == (1, 16, 5, 5)  # width * expansion

    def test_bottleneck_gradients(self, rng):
        blk = Bottleneck(4, 2, stride=1, seed=0)
        check_module_gradients(
            blk, rng.standard_normal((1, 4, 5, 5)), atol=1e-4, rtol=1e-3,
            max_entries=15,
        )

    def test_dense_block_concatenation(self, rng):
        blk = DenseBlock(6, n_layers=3, growth=4, seed=0)
        y = blk.forward(rng.standard_normal((2, 6, 5, 5)))
        assert y.shape == (2, 6 + 3 * 4, 5, 5)
        assert blk.out_channels == 18

    def test_dense_block_gradients(self, rng):
        blk = DenseBlock(4, n_layers=2, growth=3, seed=0)
        check_module_gradients(
            blk, rng.standard_normal((1, 4, 5, 5)), atol=1e-4, rtol=1e-3,
            max_entries=15,
        )

    def test_transition_halves_spatial(self, rng):
        tr = Transition(8, 4, seed=0)
        y = tr.forward(rng.standard_normal((1, 8, 6, 6)))
        assert y.shape == (1, 4, 3, 3)


class TestTrainableModels:
    @pytest.mark.parametrize("name", ["resnet_tiny", "vgg_tiny", "densenet_tiny"])
    def test_tiny_models_forward_backward(self, name, rng):
        model = build_model(name, num_classes=4, seed=0)
        x = rng.standard_normal((2, 3, 16, 16))
        logits = model.forward(x)
        assert logits.shape == (2, 4)
        loss = CrossEntropyLoss()
        loss(logits, np.array([0, 1]))
        grad_in = model.backward(loss.backward())
        assert grad_in.shape == x.shape
        assert np.all(np.isfinite(grad_in))

    @pytest.mark.parametrize(
        "name,size",
        [("resnet20_slim", 16), ("resnet18_slim", 16), ("resnet50_slim", 16),
         ("vgg16_slim", 32), ("densenet121_slim", 16),
         ("densenet201_slim", 16)],
    )
    def test_slim_models_forward(self, name, size, rng):
        # VGG-16 has five 2x2 pools, so it needs at least 32px input.
        model = build_model(name, num_classes=10, seed=0)
        y = model.forward(rng.standard_normal((1, 3, size, size)))
        assert y.shape == (1, 10)
        assert np.all(np.isfinite(y))

    def test_registry_rejects_unknown(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_registry_lists_models(self):
        names = available_models()
        assert "resnet20" in names and "vgg16_slim" in names

    def test_deterministic_construction(self, rng):
        m1 = build_model("resnet_tiny", seed=7)
        m2 = build_model("resnet_tiny", seed=7)
        x = rng.standard_normal((1, 3, 16, 16))
        np.testing.assert_array_equal(m1.forward(x), m2.forward(x))

    def test_different_seeds_differ(self, rng):
        m1 = build_model("resnet_tiny", seed=1)
        m2 = build_model("resnet_tiny", seed=2)
        x = rng.standard_normal((1, 3, 16, 16))
        assert not np.allclose(m1.forward(x), m2.forward(x))


class TestIntrospection:
    def test_trace_finds_convs(self):
        model = build_model("resnet_tiny", seed=0)
        sites = trace_conv_sites(model, (16, 16))
        assert len(sites) >= 3
        for s in sites:
            assert s.layer.kernel_size > 1  # spatial_only default

    def test_trace_records_resolutions(self):
        model = build_model("resnet_tiny", seed=0)
        sites = trace_conv_sites(model, (16, 16))
        by_name = {s.name: s for s in sites}
        assert by_name["stem.layer0"].height == 16

    def test_trace_restores_forward(self, rng):
        model = build_model("resnet_tiny", seed=0)
        x = rng.standard_normal((1, 3, 16, 16))
        before = model.forward(x)
        trace_conv_sites(model, (16, 16))
        after = model.forward(x)
        np.testing.assert_array_equal(before, after)

    def test_find_and_replace_module(self, rng):
        model = build_model("resnet_tiny", seed=0)
        sites = trace_conv_sites(model, (16, 16))
        target = sites[1]
        tucker = TuckerConv2d.from_conv(target.layer, rank_out=2, rank_in=2)
        replace_module(model, target.name, tucker)
        assert isinstance(find_module(model, target.name), TuckerConv2d)
        y = model.forward(rng.standard_normal((1, 3, 16, 16)))
        assert np.all(np.isfinite(y))

    def test_replace_unknown_raises(self):
        model = build_model("resnet_tiny", seed=0)
        with pytest.raises(KeyError):
            replace_module(model, "does.not.exist", Conv2d(2, 2, 1))

    def test_model_conv_flops_decreases_after_compression(self):
        model = build_model("resnet_tiny", seed=0)
        before = model_conv_flops(model, (16, 16))
        sites = trace_conv_sites(model, (16, 16))
        for s in sites:
            if s.in_channels >= 4 and s.out_channels >= 4:
                replace_module(
                    model, s.name,
                    TuckerConv2d.from_conv(s.layer, rank_out=2, rank_in=2),
                )
        after = model_conv_flops(model, (16, 16))
        assert after < before


class TestArchSpecs:
    # Published reference numbers (FLOPs with 2/MAC, params without BN).
    REFERENCE = {
        "resnet18": (3.6e9, 11.7e6),
        "resnet50": (8.2e9, 25.5e6),
        "vgg16": (30.9e9, 138.4e6),
        "densenet121": (5.7e9, 7.9e6),
        "densenet201": (8.6e9, 19.8e6),
    }

    @pytest.mark.parametrize("name", list(REFERENCE))
    def test_flops_and_params_match_published(self, name):
        spec = get_model_spec(name)
        flops_ref, params_ref = self.REFERENCE[name]
        assert spec.total_flops() == pytest.approx(flops_ref, rel=0.05)
        assert spec.total_params() == pytest.approx(params_ref, rel=0.05)

    def test_resnet18_structure(self):
        spec = get_model_spec("resnet18")
        convs = spec.convs()
        assert convs[0].kernel == 7 and convs[0].stride == 2
        assert len(spec.decomposable_convs()) == 16  # 8 blocks x 2 convs

    def test_spatial_chain_consistent(self):
        for name in self.REFERENCE:
            spec = get_model_spec(name)
            # The final pooling layer must see a positive spatial extent.
            pools = [l for l in spec.layers if l.kind == "pool"]
            assert pools[-1].height >= 1

    def test_layer_spec_flops(self):
        l = LayerSpec("x", "conv", 64, 128, 56, 56, 3, 1, 1)
        assert l.flops() == 2 * 56 * 56 * 128 * 64 * 9

    def test_layer_spec_out_size_stride(self):
        l = LayerSpec("x", "conv", 3, 64, 224, 224, 7, 2, 3)
        assert l.out_height == 112

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            get_model_spec("mobilenet")

    def test_paper_shapes_inventory(self):
        assert len(PAPER_CONV_SHAPES) == 18
        assert (64, 32, 224, 224) in PAPER_CONV_SHAPES
        assert (192, 160, 7, 7) in PAPER_CONV_SHAPES

    def test_densenet_channel_growth(self):
        spec = get_model_spec("densenet121")
        # Final dense block ends at 1024 channels before the classifier.
        fc = [l for l in spec.layers if l.kind == "fc"][0]
        assert fc.in_channels == 1024
