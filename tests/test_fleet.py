"""Fleet serving: replicas, admission, routing, chaos, and the
session-level robustness fixes that ride along (cancellation, serve-loop
fault containment, registry shutdown ordering)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.codesign.pipeline import decompose_for_device
from repro.gpusim.device import A100, RTX2080TI
from repro.inference import compile_model
from repro.models.registry import build_model
from repro.serving import (
    AdmissionController,
    CircuitBreakerPolicy,
    CorruptedOutput,
    DeadlineExceeded,
    FaultInjector,
    FaultSpec,
    InferenceSession,
    InjectedFault,
    LeastLoadedRouter,
    Overloaded,
    PriorityClass,
    Replica,
    ReplicaSet,
    RequestCancelled,
    RetryPolicy,
    RoundRobinRouter,
    SessionRegistry,
    WorkerCrash,
    make_router,
)

IMAGE_HW = (8, 8)


def make_executable(max_batch: int = 4, budget: float = 0.5):
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, IMAGE_HW, budget=budget, rank_step=2)
    model.eval()
    exe = compile_model(
        model, A100, image_hw=IMAGE_HW, core_backend="auto",
        max_batch=max_batch, model_name="resnet_tiny",
    )
    return model, exe


def make_session(max_batch: int = 4, **kwargs) -> InferenceSession:
    _, exe = make_executable(max_batch=max_batch)
    return InferenceSession(exe, **kwargs)


def make_fleet(
    n: int = 2,
    *,
    fallback: bool = False,
    breaker: CircuitBreakerPolicy | None = None,
    retry: RetryPolicy | None = None,
    admission: AdmissionController | None = None,
    router="least-loaded",
) -> tuple:
    """N identical replicas over one compiled model (fresh sessions)."""
    model, _ = make_executable()

    def factory() -> InferenceSession:
        _, exe = make_executable()
        return InferenceSession(exe, batch_window_s=0.001)

    replicas = [
        Replica(f"r{i}", factory(), factory=factory, breaker=breaker)
        for i in range(n)
    ]
    fb = None
    if fallback:
        _, fb_exe = make_executable(budget=0.3)
        fb = InferenceSession(fb_exe, batch_window_s=0.001)
    fleet = ReplicaSet(
        "test", replicas, fallback=fb, retry=retry,
        admission=admission, router=router,
    )
    return model, fleet


def sample(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((3,) + IMAGE_HW)


# ---------------------------------------------------------------------
# Satellite 1: request cancellation


def test_result_timeout_cancels_request():
    session = make_session(max_batch=1, batch_window_s=0.0)
    inj = FaultInjector(seed=0)
    # Every run is slow: queued requests sit long enough to time out.
    inj.infect(session, FaultSpec(extra_latency_s=0.05))
    with session:
        handles = [session.submit(sample(i)) for i in range(6)]
        # The tail of the queue cannot make a 1 ms deadline.
        with pytest.raises(TimeoutError):
            handles[-1].result(timeout=0.001)
        assert handles[-1].cancelled
        # The worker must reap it: finished with RequestCancelled, not
        # computed.
        with pytest.raises(RequestCancelled):
            handles[-1].result(timeout=10.0)
        for h in handles[:-1]:
            h.result(timeout=10.0)
        stats = session.stats()
    assert stats.cancelled == 1
    # The cancelled request never reached the executable: only the five
    # live requests were batched and served (singletons, max_batch=1).
    assert stats.requests == 5
    assert stats.batches == 5


def test_cancel_is_noop_after_completion():
    session = make_session()
    with session:
        pending = session.submit(sample())
        y = pending.result(timeout=10.0)
        assert not pending.cancel()  # too late: result already landed
        assert not pending.cancelled
        np.testing.assert_array_equal(pending.result(timeout=0), y)


# ---------------------------------------------------------------------
# Satellite 2: serve loop contains executable exceptions


def test_serve_loop_survives_executable_exception():
    session = make_session(max_batch=2, batch_window_s=0.0)
    inj = FaultInjector(seed=1)
    wrapped = inj.infect(session, FaultSpec(exception_p=1.0, after_runs=0))
    with session:
        with pytest.raises(InjectedFault):
            session.infer(sample(), timeout=10.0)
        stats_mid = session.stats()
        assert stats_mid.worker_alive  # the worker contained the fault
        assert stats_mid.failures == 1
        assert "InjectedFault" in (stats_mid.last_error or "")
        FaultInjector.cure(session)
        y = session.infer(sample(), timeout=10.0)  # still serving
        assert np.isfinite(y).all()
    assert wrapped.injected["exception"] == 1


def test_worker_crash_fails_batch_and_rejects_queue():
    session = make_session(max_batch=1, batch_window_s=0.0)
    inj = FaultInjector(seed=2)
    inj.infect(session, FaultSpec(crash_p=1.0))
    first = session.submit(sample(0))
    with pytest.raises(WorkerCrash):
        first.result(timeout=10.0)
    stats = session.stats()
    assert not stats.worker_alive
    assert stats.failures >= 1
    # Closed by the crash: later submits raise immediately, never hang.
    with pytest.raises(RuntimeError):
        session.submit(sample(1))


# ---------------------------------------------------------------------
# Satellite 3: registry close_all vs in-flight recalibration


def test_close_all_joins_inflight_recalibration():
    registry = SessionRegistry()
    session = registry.create(
        "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5, rank_step=2,
        max_batch=2,
    )
    for _ in range(4):
        session.infer(sample(), timeout=30.0)
    # Fire the async recalibration path, then immediately tear down.
    session._replan_pending = True
    registry._spawn_recalibration(session)
    registry.close_all()  # must join the job, not race it
    assert registry._recal_threads == []
    assert not registry._closing
    with pytest.raises(RuntimeError):
        session.submit(sample())


def test_recalibrate_refuses_while_closing():
    registry = SessionRegistry()
    session = registry.create(
        "resnet_tiny", A100, image_hw=IMAGE_HW, budget=0.5, rank_step=2,
    )
    registry._closing = True
    try:
        with pytest.raises(RuntimeError, match="closing"):
            registry.recalibrate(session.name)
    finally:
        registry._closing = False
        registry.close_all()


# ---------------------------------------------------------------------
# Satellite 4: infer_many shared deadline; close/submit ordering


def test_infer_many_shared_deadline_with_slow_worker():
    session = make_session(max_batch=1, batch_window_s=0.0)
    inj = FaultInjector(seed=3)
    inj.infect(session, FaultSpec(extra_latency_s=0.05))
    xs = [sample(i) for i in range(10)]
    start = time.perf_counter()
    with session:
        with pytest.raises(TimeoutError):
            # Per-handle deadlines would allow ~10 x 0.12 s; the shared
            # deadline must cut the whole call off at ~0.12 s.
            session.infer_many(xs, timeout=0.12)
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0


def test_submit_after_close_raises_immediately():
    session = make_session()
    session.close()
    start = time.perf_counter()
    with pytest.raises(RuntimeError, match="closed"):
        session.submit(sample())
    assert time.perf_counter() - start < 1.0
    # infer too (the sugar path), and it must not hang either.
    with pytest.raises(RuntimeError, match="closed"):
        session.infer(sample())


# ---------------------------------------------------------------------
# Chaos harness determinism


def test_fault_injection_is_deterministic():
    spec = FaultSpec(exception_p=0.2, corrupt_p=0.2, latency_spike_p=0.1,
                     latency_spike_s=0.0)

    def run_sequence(seed: int) -> list:
        _, exe = make_executable(max_batch=1)
        wrapped = FaultInjector(seed=seed).wrap(exe, spec)
        events = []
        x = np.zeros((1, 3) + IMAGE_HW)
        for _ in range(40):
            try:
                y = wrapped.run(x)
                events.append("corrupt" if np.isnan(y).any() else "ok")
            except InjectedFault:
                events.append("exc")
        return events

    a, b = run_sequence(123), run_sequence(123)
    assert a == b
    assert "exc" in a and "corrupt" in a and "ok" in a
    assert run_sequence(321) != a


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(exception_p=0.8, corrupt_p=0.5)  # sums > 1
    with pytest.raises(ValueError):
        FaultSpec(crash_p=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(extra_latency_s=-1.0)


def test_corruption_poisons_copy_not_arena():
    _, exe = make_executable(max_batch=1)
    wrapped = FaultInjector(seed=0).wrap(exe, FaultSpec(corrupt_p=1.0))
    x = np.zeros((1, 3) + IMAGE_HW)
    bad = wrapped.run(x)
    assert np.isnan(bad).all()
    healthy = exe.run(x)  # the arena output must be untouched
    assert np.isfinite(healthy).all()


# ---------------------------------------------------------------------
# Routers


class _FakeReplica:
    def __init__(self, rid, wait, alive=True):
        self.id = rid
        self._wait = wait
        self._alive = alive

    def available(self):
        return self._alive

    def estimated_wait_s(self):
        return self._wait


def test_least_loaded_ranks_by_estimated_wait():
    fast = _FakeReplica("fast", 0.001)
    slow = _FakeReplica("slow", 0.1)
    dead = _FakeReplica("dead", 0.0, alive=False)
    ranking = LeastLoadedRouter().rank([slow, dead, fast])
    assert [r.id for r in ranking] == ["fast", "slow"]


def test_round_robin_rotates():
    replicas = [_FakeReplica(f"r{i}", 0.0) for i in range(3)]
    router = RoundRobinRouter()
    firsts = [router.rank(replicas)[0].id for _ in range(6)]
    assert firsts == ["r0", "r1", "r2", "r0", "r1", "r2"]


def test_make_router_resolves_and_validates():
    assert isinstance(make_router("round-robin"), RoundRobinRouter)
    with pytest.raises(KeyError, match="least-loaded"):
        make_router("nope")
    with pytest.raises(TypeError):
        make_router(object())


# ---------------------------------------------------------------------
# Admission control


def test_admission_sheds_predicted_deadline_miss():
    ctrl = AdmissionController()
    pclass = ctrl.resolve("high")
    assert ctrl.admit(pclass, est_delay_s=0.01, deadline_s=1.0) == "accept"
    with pytest.raises(Overloaded) as info:
        ctrl.admit(pclass, est_delay_s=5.0, deadline_s=1.0)
    assert info.value.priority == "high"
    assert info.value.est_delay_s == 5.0
    stats = ctrl.stats()
    assert stats.shed["high"] == 1 and stats.admitted["high"] == 1


def test_admission_degrades_low_priority_instead_of_shedding():
    ctrl = AdmissionController()
    low = ctrl.resolve("low")
    decision = ctrl.admit(low, est_delay_s=5.0, deadline_s=1.0,
                          can_degrade=True)
    assert decision == "degrade"
    # Without a fallback available the same request is shed.
    with pytest.raises(Overloaded):
        ctrl.admit(low, est_delay_s=5.0, deadline_s=1.0, can_degrade=False)


def test_admission_degraded_mode_hysteresis():
    ctrl = AdmissionController(pressure_window=16, degrade_enter=0.5,
                               degrade_exit=0.1, min_samples=4)
    low = ctrl.resolve("low")
    for _ in range(8):  # sustained pressure -> degraded mode
        ctrl.admit(low, est_delay_s=5.0, deadline_s=1.0, can_degrade=True)
    assert ctrl.degraded
    # Still degrading even when an individual request is not pressured.
    assert ctrl.admit(low, 0.0, 1.0, can_degrade=True) == "degrade"
    for _ in range(32):  # pressure clears -> exits degraded mode
        ctrl.admit(low, 0.0, 1.0, can_degrade=True)
    assert not ctrl.degraded
    assert ctrl.admit(low, 0.0, 1.0, can_degrade=True) == "accept"


def test_admission_rejects_unknown_class_and_bad_config():
    ctrl = AdmissionController()
    with pytest.raises(KeyError, match="available"):
        ctrl.resolve("platinum")
    with pytest.raises(ValueError):
        AdmissionController(())
    with pytest.raises(ValueError):
        AdmissionController(degrade_enter=0.1, degrade_exit=0.5)
    with pytest.raises(ValueError):
        PriorityClass("bad", 0, deadline_s=0.0)


# ---------------------------------------------------------------------
# The fleet


def test_fleet_matches_direct_execution():
    model, fleet = make_fleet(n=2)
    rng = np.random.default_rng(0)
    xs = [rng.standard_normal((3,) + IMAGE_HW) for _ in range(8)]
    with fleet:
        ys = [fleet.infer(x, priority="normal", timeout=30.0) for x in xs]
    ref = model.forward(np.stack(xs))
    np.testing.assert_allclose(np.stack(ys), ref, atol=1e-8)
    stats = fleet.stats()
    assert stats.completed == 8
    assert stats.per_priority["normal"].completed == 8
    assert stats.per_priority["normal"].p99_latency_s > 0


def test_fleet_sheds_when_no_replica_can_meet_deadline():
    _, fleet = make_fleet(n=1)
    inj = FaultInjector(seed=4)
    # A modeled slow device: prediction honestly reports the slowdown,
    # so admission sees est_delay >> deadline and sheds up front.
    inj.infect(fleet.replicas[0].session, FaultSpec(extra_latency_s=0.2))
    with fleet:
        with pytest.raises(Overloaded) as info:
            fleet.infer(sample(), priority="high", timeout=0.01)
        assert info.value.priority == "high"
        assert fleet.stats().admission.shed["high"] == 1


def test_fleet_degrades_low_priority_to_fallback():
    _, fleet = make_fleet(n=1, fallback=True)
    inj = FaultInjector(seed=5)
    inj.infect(fleet.replicas[0].session, FaultSpec(extra_latency_s=0.2))
    with fleet:
        # Deadline below the slow replica's (honest) 200 ms prediction:
        # a high request would be shed; degradable low traffic lands on
        # the cheap fallback plan instead and completes in time.
        y = fleet.infer(sample(), priority="low", timeout=0.1)
        assert np.isfinite(y).all()
        stats = fleet.stats()
        assert stats.per_priority["low"].degraded == 1
        # The primary replica never ran it.
        assert stats.replicas[0].session.requests == 0


def test_fleet_retries_on_replica_exception():
    _, fleet = make_fleet(n=2, retry=RetryPolicy(max_attempts=2))
    inj = FaultInjector(seed=6)
    # r0 always raises; r1 is healthy. Every request must still land.
    inj.infect(fleet.replicas[0].session, FaultSpec(exception_p=1.0))
    with fleet:
        for i in range(6):
            y = fleet.infer(sample(i), priority="normal", timeout=10.0)
            assert np.isfinite(y).all()
        stats = fleet.stats()
    assert stats.completed == 6
    assert stats.retries >= 1
    r0 = next(r for r in stats.replicas if r.replica_id == "r0")
    assert r0.failures >= 1


def test_fleet_refuses_corrupted_outputs():
    _, fleet = make_fleet(n=2, retry=RetryPolicy(max_attempts=2))
    inj = FaultInjector(seed=7)
    inj.infect(fleet.replicas[0].session, FaultSpec(corrupt_p=1.0))
    with fleet:
        for i in range(6):
            y = fleet.infer(sample(i), priority="normal", timeout=10.0)
            # NaN-poisoned answers must never be served.
            assert np.isfinite(y).all()
        stats = fleet.stats()
    assert stats.corruption_blocked >= 1


def test_circuit_breaker_opens_restarts_and_readmits():
    breaker = CircuitBreakerPolicy(failure_threshold=2,
                                   reset_timeout_s=0.05)
    _, fleet = make_fleet(n=2, breaker=breaker,
                          retry=RetryPolicy(max_attempts=2))
    inj = FaultInjector(seed=8)
    inj.infect(fleet.replicas[0].session, FaultSpec(exception_p=1.0))
    with fleet:
        for i in range(8):
            fleet.infer(sample(i), priority="normal", timeout=10.0)
        # r0 accumulated consecutive failures: the breaker must trip.
        deadline = time.perf_counter() + 10.0
        r0 = fleet.replicas[0]
        while r0.state == "closed" and time.perf_counter() < deadline:
            try:
                fleet.infer(sample(), priority="normal", timeout=10.0)
            except Exception:
                pass
            time.sleep(0.01)
        assert r0.state != "closed"
        # Maintenance walks it through restart -> probe -> readmission;
        # the restarted session is a fresh compile without the fault.
        while not (r0.state == "closed" and r0.restarts >= 1):
            assert time.perf_counter() < deadline, (
                f"breaker stuck in state {r0.state!r}"
            )
            time.sleep(0.02)
        assert r0.session.is_alive()
        y = fleet.infer(sample(), priority="normal", timeout=10.0)
        assert np.isfinite(y).all()


def test_fleet_recovers_from_worker_death():
    breaker = CircuitBreakerPolicy(failure_threshold=3,
                                   reset_timeout_s=0.05)
    _, fleet = make_fleet(n=2, breaker=breaker,
                          retry=RetryPolicy(max_attempts=2))
    inj = FaultInjector(seed=9)
    inj.infect(fleet.replicas[0].session, FaultSpec(crash_p=1.0))
    with fleet:
        # Every request completes despite one replica's worker dying.
        for i in range(8):
            y = fleet.infer(sample(i), priority="normal", timeout=10.0)
            assert np.isfinite(y).all()
        deadline = time.perf_counter() + 10.0
        r0 = fleet.replicas[0]
        while not (r0.state == "closed" and r0.restarts >= 1):
            assert time.perf_counter() < deadline, (
                f"dead worker not recovered, state {r0.state!r}"
            )
            time.sleep(0.02)
        assert r0.session.is_alive()


def test_hedged_request_wins_against_slow_replica():
    retry = RetryPolicy(max_attempts=2, hedge_after_s=0.01)
    _, fleet = make_fleet(n=2, retry=retry)
    inj = FaultInjector(seed=10)
    # r0 is slow but honest about it... except routers are per-request;
    # force r0 first via round-robin so the hedge has something to beat.
    inj.infect(fleet.replicas[0].session,
               FaultSpec(extra_latency_s=0.15))
    fleet.router = make_router("round-robin")
    with fleet:
        start = time.perf_counter()
        y = fleet.infer(sample(), priority="high", timeout=10.0)
        elapsed = time.perf_counter() - start
        assert np.isfinite(y).all()
        stats = fleet.stats()
    # The hedge fired and the fast replica answered well before the
    # slow replica's 150 ms sleep.
    assert stats.hedges == 1
    assert elapsed < 0.15


def test_fleet_deadline_exceeded_is_typed_and_prompt():
    _, fleet = make_fleet(n=1, retry=RetryPolicy(max_attempts=1))
    inj = FaultInjector(seed=11)
    inj.infect(fleet.replicas[0].session, FaultSpec(extra_latency_s=0.05))
    with fleet:
        # Queue enough work that the last request is admitted (est
        # delay below its generous deadline is not required — use a
        # deadline the slowdown cannot meet but admission lets by).
        start = time.perf_counter()
        with pytest.raises((DeadlineExceeded, Overloaded)):
            fleet.infer(sample(), priority="normal", timeout=0.04)
        assert time.perf_counter() - start < 2.0
        stats = fleet.stats()
    assert (stats.per_priority["normal"].deadline_exceeded
            + sum(stats.admission.shed.values())) >= 1


def test_fleet_unknown_priority_and_closed_errors():
    _, fleet = make_fleet(n=1)
    with fleet:
        with pytest.raises(KeyError, match="available"):
            fleet.infer(sample(), priority="platinum")
    with pytest.raises(RuntimeError, match="closed"):
        fleet.infer(sample(), priority="normal")


def test_replica_set_validates_construction():
    with pytest.raises(ValueError, match="at least one"):
        ReplicaSet("empty", [])
    session_a = make_session()
    session_b = make_session()
    try:
        with pytest.raises(ValueError, match="duplicate"):
            ReplicaSet("dup", [Replica("r0", session_a),
                               Replica("r0", session_b)])
    finally:
        session_a.close()
        session_b.close()


def test_policy_validation():
    with pytest.raises(ValueError):
        CircuitBreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(hedge_after_s=-1.0)


def test_fleet_concurrent_clients_all_complete():
    _, fleet = make_fleet(n=2, retry=RetryPolicy(max_attempts=3))
    inj = FaultInjector(seed=12)
    inj.infect(fleet.replicas[0].session,
               FaultSpec(exception_p=0.3, latency_spike_p=0.1,
                         latency_spike_s=0.005))
    outcomes: dict = {}

    def client(i):
        got = errs = 0
        for j in range(5):
            try:
                y = fleet.infer(sample(i * 10 + j), priority="normal",
                                timeout=10.0)
                assert np.isfinite(y).all()
                got += 1
            except (Overloaded, DeadlineExceeded, CorruptedOutput):
                errs += 1
        outcomes[i] = (got, errs)

    with fleet:
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive(), "client hung: a future never resolved"
    # Every request terminated (completed or typed error) — none hung.
    assert sum(g + e for g, e in outcomes.values()) == 20
    assert sum(g for g, _ in outcomes.values()) >= 15
