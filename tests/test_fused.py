"""Fused whole-chain executor: correctness matrix, backend dispatch,
arena shrink, and the numba feature gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    DEPTHWISE_BASELINE,
    backend_names,
    dispatch_core,
    dispatch_dwcore,
    get_backend,
)
from repro.gpusim.device import A100, get_device
from repro.inference import compile_model
from repro.inference.executable import CompiledFusedSite
from repro.kernels.base import ConvShape
from repro.kernels.fused import (
    HAVE_NUMBA,
    FusedChainExecutor,
    FusedTiling,
    fused_core_launch,
    fused_smem_bytes,
    jit_enabled,
    select_block_rows,
    select_fused_tiling,
)
from repro.nn.cp_conv import CPConv2d
from repro.nn.module import Module, Sequential
from repro.nn.tt_conv import TTConv2d
from repro.nn.tucker_conv import TuckerConv2d

RTX = get_device("2080ti")

def make_site(fmt: str, k: int, stride: int, padding: int) -> Module:
    if fmt == "tucker":
        mod = TuckerConv2d(6, 8, k, rank_in=3, rank_out=4,
                           stride=stride, padding=padding, seed=1)
    elif fmt == "cp":
        mod = CPConv2d(6, 8, k, rank=4,
                       stride=stride, padding=padding, seed=2)
    else:
        mod = TTConv2d(6, 8, k, rank1=2, rank2=2,
                       stride=stride, padding=padding, seed=3)
    return Sequential(mod).eval()


# ---------------------------------------------------------------------------
# Satellite 1: the correctness sweep matrix.  Fused vs per-stage vs
# Module.forward across stride / padding / kernel size / format.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt", ["tucker", "cp", "tt"])
@pytest.mark.parametrize("k", [1, 3, 5])
@pytest.mark.parametrize("stride", [1, 2])
@pytest.mark.parametrize("padding", [0, 1, "same"])
def test_fused_matches_per_stage_and_forward(fmt, k, stride, padding):
    pad = (k - 1) // 2 if padding == "same" else padding
    model = make_site(fmt, k, stride, pad)
    hw = 9
    x = np.random.default_rng(0).standard_normal((2, 6, hw, hw))
    ref = model.forward(x)
    fused_exe = compile_model(
        model, A100, image_hw=(hw, hw), in_channels=6,
        core_backend="fused", max_batch=2,
    )
    # tdc-model offers no dwcore hook, so every format binds its
    # per-stage compiled form under it.
    staged_exe = compile_model(
        model, A100, image_hw=(hw, hw), in_channels=6,
        core_backend="tdc-model", max_batch=2,
    )
    assert isinstance(fused_exe.sites()[0], CompiledFusedSite)
    assert not isinstance(staged_exe.sites()[0], CompiledFusedSite)
    y_fused = fused_exe.run(x)
    y_staged = staged_exe.run(x)
    assert np.max(np.abs(y_fused - ref)) <= 1e-9
    assert np.max(np.abs(y_fused - y_staged)) <= 1e-9


# ---------------------------------------------------------------------------
# Backend registration and dispatch
# ---------------------------------------------------------------------------

def test_fused_backend_registered():
    assert "fused" in backend_names()
    b = get_backend("fused")
    assert b.supports(ConvShape(8, 16, 8, 8), A100)


def test_fused_kernel_factory_matches_reference():
    from repro.kernels.base import reference_conv

    shape = ConvShape(4, 4, 6, 6, 3, 3)
    kernel = get_backend("fused").kernel(shape, A100)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((4, 6, 6))
    w = rng.standard_normal((4, 4, 3, 3))
    np.testing.assert_allclose(kernel.run(x, w), reference_conv(x, w),
                               atol=1e-6)


def test_auto_dispatch_selects_fused_where_traffic_dominates():
    # Large mid_out over a small spatial extent: the per-stage paths
    # pay intermediate z1/z2 round-trips the fused chain never issues.
    shape = ConvShape(c=8, n=64, h=4, w=4, r=3, s=3)
    for dev in (A100, RTX):
        d = dispatch_core(shape, dev)
        assert d.backend == "fused", (dev.name, d.backend)


def test_dispatch_dwcore_baseline_and_fixed():
    shape = ConvShape(c=8, n=8, h=8, w=8, r=3, s=3)
    baseline = 1e-4
    # Fixed backend without the dwcore hook -> depthwise baseline.
    d = dispatch_dwcore(shape, A100, baseline, backend="tdc-model")
    assert d.backend == DEPTHWISE_BASELINE
    assert d.latency == baseline
    # Fixed fused backend -> its offer, even if slower than baseline.
    d = dispatch_dwcore(shape, A100, baseline, backend="fused")
    assert d.backend == "fused"
    # Auto never does worse than the baseline.
    d = dispatch_dwcore(shape, A100, baseline, backend="auto")
    assert d.latency <= baseline


def test_fused_launch_drops_intermediate_traffic():
    shape = ConvShape(c=16, n=32, h=16, w=16, r=3, s=3)
    tiling = select_fused_tiling(shape, A100)
    assert tiling is not None
    launch = fused_core_launch(shape, A100, tiling)
    assert launch.write_bytes == 0  # output drains through pw2
    assert launch.smem_per_block == fused_smem_bytes(shape, tiling)
    assert launch.smem_per_block <= A100.shared_mem_per_block


def test_select_fused_tiling_respects_smem_budget():
    for c, n, hw in ((64, 64, 56), (128, 128, 28), (256, 256, 14)):
        shape = ConvShape(c=c, n=n, h=hw, w=hw, r=3, s=3)
        for dev in (A100, RTX):
            t = select_fused_tiling(shape, dev)
            assert t is not None
            assert fused_smem_bytes(shape, t) <= dev.shared_mem_per_block


def test_select_block_rows_bounded_by_budget():
    rows = select_block_rows(
        mid_in=32, mid_out=32, oh=56, ow=56, ext_w=58,
        kernel=3, stride=1, itemsize=8,
    )
    assert 1 <= rows <= 56


# ---------------------------------------------------------------------------
# Satellite 2: arena shrink + compiled binding
# ---------------------------------------------------------------------------

def _deep_model():
    return Sequential(
        TuckerConv2d(8, 16, 3, rank_in=4, rank_out=6, padding=1, seed=1),
        CPConv2d(16, 16, 3, rank=6, padding=1, seed=2),
        TTConv2d(16, 12, 3, rank1=2, rank2=3, padding=1, seed=3),
    ).eval()


def test_fused_sites_shrink_arena():
    model = _deep_model()
    fused_exe = compile_model(
        model, A100, image_hw=(16, 16), in_channels=8,
        core_backend="fused", max_batch=2,
    )
    staged_exe = compile_model(
        model, A100, image_hw=(16, 16), in_channels=8,
        core_backend="tdc-model", max_batch=2,
    )
    report = fused_exe.arena_report()
    assert report["fused_sites"] == 3
    assert report["saved_bytes"] > 0
    assert report["arena_bytes"] == fused_exe.arena.nbytes
    assert report["per_stage_equiv_bytes"] == \
        report["arena_bytes"] + report["saved_bytes"]
    assert fused_exe.arena.nbytes < staged_exe.arena.nbytes
    # No per-stage intermediate buffers remain for fused sites.
    for name in fused_exe.arena.names():
        assert ".z1pad" not in name and ".ysame" not in name
    # Numerics still agree between both compilations.
    x = np.random.default_rng(4).standard_normal((2, 8, 16, 16))
    assert np.max(np.abs(fused_exe.run(x) - staged_exe.run(x))) <= 1e-9


def test_auto_compile_binds_fused_site_end_to_end():
    # Geometry chosen so auto dispatch picks fused for the core
    # (see test_auto_dispatch_selects_fused_where_traffic_dominates)
    # with zero fused-specific planner plumbing.
    model = Sequential(
        TuckerConv2d(16, 96, 3, rank_in=8, rank_out=64, padding=1, seed=5),
    ).eval()
    exe = compile_model(
        model, A100, image_hw=(4, 4), in_channels=16,
        core_backend="auto", max_batch=1,
    )
    assert exe.backend_counts().get("fused", 0) >= 1
    assert isinstance(exe.sites()[0], CompiledFusedSite)
    x = np.random.default_rng(6).standard_normal((1, 16, 4, 4))
    assert np.max(np.abs(exe.run(x) - model.forward(x))) <= 1e-9


def test_fused_hot_path_allocates_nothing(count_allocations):
    model = _deep_model()
    exe = compile_model(
        model, A100, image_hw=(16, 16), in_channels=8,
        core_backend="fused", max_batch=2,
    )
    x = np.random.default_rng(7).standard_normal((2, 8, 16, 16))
    exe.run(x)  # warm (first touch)
    assert count_allocations(lambda: exe.run(x)) == {}


def test_fused_calibration_sample_and_attribution():
    from repro.calibration.runner import run_calibration

    model = _deep_model()
    exe = compile_model(
        model, A100, image_hw=(16, 16), in_channels=8,
        core_backend="fused", max_batch=1,
    )
    run = run_calibration(exe, warmup=0, repeats=1)
    fused_samples = [s for s in run.samples if s.backend == "fused"]
    assert len(fused_samples) == 3
    for s in fused_samples:
        assert s.predicted_s > 0 and s.measured_s > 0
    # The chain's pw1/pw2 raws count toward the core bucket, so the
    # aux split stays non-negative and unbiased.
    assert run.core_predicted_s > 0
    assert run.aux_predicted_s >= 0


# ---------------------------------------------------------------------------
# Satellite: the numba JIT feature gate (numba is absent here)
# ---------------------------------------------------------------------------

def test_jit_gate_off_without_numba(monkeypatch):
    if HAVE_NUMBA:  # pragma: no cover - environment-dependent
        monkeypatch.setenv("REPRO_FUSED_JIT", "0")
        assert jit_enabled() is False
        return
    assert jit_enabled() is False
    monkeypatch.setenv("REPRO_FUSED_JIT", "1")
    assert jit_enabled() is False  # no numba -> permanently off


def test_executor_runs_without_jit():
    ex = FusedChainExecutor(
        "cp",
        np.eye(4, 6),
        np.ones((4, 3, 3)),
        np.eye(8, 4),
        np.zeros(8),
        in_hw=(9, 9),
        kernel_size=3,
        stride=1,
        padding=1,
        max_batch=1,
    )
    assert ex.uses_jit is False
    scratch = {
        name: np.zeros(shape) for name, shape in ex.scratch_shapes().items()
    }
    ex.bind(scratch)
    out = np.empty((1, 8, ex.oh, ex.ow))
    ex.run(np.zeros((1, 6, 9, 9)), out)
    np.testing.assert_array_equal(out, 0.0)


def test_fused_tiling_str_roundtrip():
    t = FusedTiling(8, 16, 4)
    assert str(t) == "fused(tb=8,tw=16,tc=4)"
    assert get_backend("fused").tiling(ConvShape(8, 8, 8, 8), A100)
