"""Tests for shared utilities (RNG, tables, validation)."""

import numpy as np
import pytest

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.tables import Table, format_float, format_speedup
from repro.utils.validation import (
    check_dim,
    check_in,
    check_positive,
    check_positive_int,
    check_shape,
)


class TestRng:
    def test_new_rng_from_int(self):
        a = new_rng(7).random(4)
        b = new_rng(7).random(4)
        np.testing.assert_array_equal(a, b)

    def test_new_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert new_rng(g) is g

    def test_spawn_independent(self):
        r1, r2 = spawn_rngs(0, 2)
        assert not np.allclose(r1.random(8), r2.random(8))

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(3), 2)
        assert len(rngs) == 2

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_mixin_lazy_and_reseed(self):
        class Thing(RngMixin):
            pass

        t = Thing(seed=1)
        first = t.rng.random()
        t.reseed(1)
        assert t.rng.random() == first


class TestTables:
    def test_render_alignment(self):
        t = Table(["a", "bb"], title="T")
        t.add_row(["x", 1.5])
        out = t.render()
        assert out.startswith("T\n")
        assert "1.5000" in out

    def test_row_length_check(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_to_dicts(self):
        t = Table(["x", "y"])
        t.add_row([1, 2])
        assert t.to_dicts() == [{"x": "1", "y": "2"}]

    def test_len(self):
        t = Table(["x"])
        t.add_row([1])
        t.add_row([2])
        assert len(t) == 2

    def test_format_float_special(self):
        assert format_float(float("nan")) == "nan"
        assert "e" in format_float(1e9)
        assert format_float(0.5) == "0.5000"

    def test_format_speedup(self):
        assert format_speedup(2.214) == "2.21x"


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_positive_int(self):
        assert check_positive_int("n", 3) == 3
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)
        with pytest.raises(TypeError):
            check_positive_int("n", True)
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_check_in(self):
        assert check_in("m", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            check_in("m", "c", ["a", "b"])

    def test_check_dim(self, rng):
        arr = rng.standard_normal((2, 3))
        assert check_dim("a", arr, 2) is not None
        with pytest.raises(ValueError):
            check_dim("a", arr, 3)

    def test_check_shape_wildcard(self, rng):
        arr = rng.standard_normal((2, 3))
        check_shape("a", arr, (-1, 3))
        with pytest.raises(ValueError):
            check_shape("a", arr, (2, 4))
        with pytest.raises(ValueError):
            check_shape("a", arr, (2, 3, 1))
