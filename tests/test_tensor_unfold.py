"""Tests for mode-n unfolding, folding, and n-mode products."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.unfold import (
    fold,
    khatri_rao,
    kronecker,
    leading_left_singular_vectors,
    mode_dot,
    multi_mode_dot,
    relative_error,
    tensor_norm,
    unfold,
)


@st.composite
def small_tensors(draw, max_order=4, max_dim=5):
    order = draw(st.integers(min_value=2, max_value=max_order))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=max_dim)) for _ in range(order)
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return np.random.default_rng(seed).standard_normal(shape)


class TestUnfoldFold:
    def test_unfold_shape(self, rng):
        t = rng.standard_normal((3, 4, 5))
        assert unfold(t, 0).shape == (3, 20)
        assert unfold(t, 1).shape == (4, 15)
        assert unfold(t, 2).shape == (5, 12)

    def test_unfold_mode0_matches_reshape(self, rng):
        t = rng.standard_normal((3, 4, 5))
        np.testing.assert_array_equal(unfold(t, 0), t.reshape(3, 20))

    def test_unfold_known_values(self):
        # Kolda & Bader example structure: fibers become columns.
        t = np.arange(24).reshape(2, 3, 4)
        u1 = unfold(t, 1)
        assert u1.shape == (3, 8)
        np.testing.assert_array_equal(u1[0], t[:, 0, :].ravel())

    def test_negative_mode(self, rng):
        t = rng.standard_normal((3, 4, 5))
        np.testing.assert_array_equal(unfold(t, -1), unfold(t, 2))

    def test_unfold_invalid_mode(self, rng):
        t = rng.standard_normal((3, 4))
        with pytest.raises(ValueError):
            unfold(t, 2)
        with pytest.raises(TypeError):
            unfold(t, 1.5)

    @given(small_tensors())
    @settings(max_examples=30, deadline=None)
    def test_fold_inverts_unfold(self, t):
        for mode in range(t.ndim):
            np.testing.assert_array_equal(
                fold(unfold(t, mode), mode, t.shape), t
            )

    def test_fold_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            fold(rng.standard_normal((3, 21)), 0, (3, 4, 5))

    def test_fold_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError):
            fold(rng.standard_normal((3, 4, 5)), 0, (3, 4, 5))


class TestModeDot:
    def test_mode_dot_shape(self, rng):
        t = rng.standard_normal((3, 4, 5))
        m = rng.standard_normal((7, 4))
        out = mode_dot(t, m, 1)
        assert out.shape == (3, 7, 5)

    def test_mode_dot_matches_unfold_identity(self, rng):
        t = rng.standard_normal((3, 4, 5))
        m = rng.standard_normal((6, 4))
        out = mode_dot(t, m, 1)
        np.testing.assert_allclose(unfold(out, 1), m @ unfold(t, 1), atol=1e-12)

    def test_mode_dot_identity(self, rng):
        t = rng.standard_normal((3, 4, 5))
        np.testing.assert_allclose(mode_dot(t, np.eye(4), 1), t, atol=1e-14)

    def test_mode_dot_dim_mismatch(self, rng):
        t = rng.standard_normal((3, 4, 5))
        with pytest.raises(ValueError):
            mode_dot(t, rng.standard_normal((6, 3)), 1)

    def test_mode_dot_needs_matrix(self, rng):
        t = rng.standard_normal((3, 4, 5))
        with pytest.raises(ValueError):
            mode_dot(t, rng.standard_normal((6,)), 1)

    @given(small_tensors(max_order=3))
    @settings(max_examples=20, deadline=None)
    def test_mode_dot_commutes_across_modes(self, t):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((2, t.shape[0]))
        b = rng.standard_normal((3, t.shape[-1]))
        ab = mode_dot(mode_dot(t, a, 0), b, t.ndim - 1)
        ba = mode_dot(mode_dot(t, b, t.ndim - 1), a, 0)
        np.testing.assert_allclose(ab, ba, atol=1e-10)

    def test_multi_mode_dot_transpose(self, rng):
        t = rng.standard_normal((4, 5))
        u = rng.standard_normal((4, 2))
        out = multi_mode_dot(t, [u], [0], transpose=True)
        np.testing.assert_allclose(out, u.T @ t, atol=1e-12)

    def test_multi_mode_dot_length_mismatch(self, rng):
        t = rng.standard_normal((3, 4))
        with pytest.raises(ValueError):
            multi_mode_dot(t, [np.eye(3)], [0, 1])


class TestProducts:
    def test_kronecker_shape(self, rng):
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((4, 5))
        assert kronecker([a, b]).shape == (8, 15)

    def test_kronecker_empty(self):
        with pytest.raises(ValueError):
            kronecker([])

    def test_khatri_rao_shape(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((5, 4))
        assert khatri_rao([a, b]).shape == (15, 4)

    def test_khatri_rao_columns_are_kron(self, rng):
        a = rng.standard_normal((3, 2))
        b = rng.standard_normal((4, 2))
        kr = khatri_rao([a, b])
        for col in range(2):
            np.testing.assert_allclose(
                kr[:, col], np.kron(a[:, col], b[:, col]), atol=1e-12
            )

    def test_khatri_rao_column_mismatch(self, rng):
        with pytest.raises(ValueError):
            khatri_rao([rng.standard_normal((3, 2)), rng.standard_normal((4, 3))])


class TestNormsAndSVD:
    def test_tensor_norm(self, rng):
        t = rng.standard_normal((3, 4, 5))
        assert tensor_norm(t) == pytest.approx(np.linalg.norm(t.ravel()))

    def test_relative_error_zero_ref(self):
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0
        assert relative_error(np.ones(3), np.zeros(3)) == float("inf")

    def test_leading_left_singular_vectors_orthonormal(self, rng):
        m = rng.standard_normal((6, 40))
        u = leading_left_singular_vectors(m, 4)
        np.testing.assert_allclose(u.T @ u, np.eye(4), atol=1e-10)

    def test_gram_trick_matches_svd(self, rng):
        m = rng.standard_normal((5, 100))  # wide: triggers Gram path
        u_gram = leading_left_singular_vectors(m, 3)
        u_svd, _, _ = np.linalg.svd(m, full_matrices=False)
        # Subspaces must agree (columns up to sign).
        proj = u_gram.T @ u_svd[:, :3]
        np.testing.assert_allclose(np.abs(np.linalg.det(proj)), 1.0, atol=1e-8)

    def test_rank_clipped_to_rows(self, rng):
        m = rng.standard_normal((3, 10))
        assert leading_left_singular_vectors(m, 10).shape == (3, 3)
