"""Tests for the planning-cache subsystem.

Covers the PlanCache primitive (LRU, stats, thread safety, persistence
with versioned invalidation), the stale-device regression the
subsystem exists to fix, the parallel warm-up path, and the batched
plan_many API.
"""

import json
import threading
from dataclasses import replace

import pytest

from repro.codesign.rank_selection import LayerShape, select_ranks
from repro.codesign.table import (
    build_performance_table,
    clear_table_cache,
    table_cache,
    table_key,
)
from repro.gpusim.device import A100, RTX2080TI
from repro.inference.engine import estimate_e2e, estimate_e2e_many
from repro.kernels.base import ConvShape
from repro.models.arch_specs import get_model_spec
from repro.perfmodel.tiling import (
    clear_tiling_cache,
    select_key,
    select_tiling,
    select_tiling_model,
    select_tiling_oracle,
    tiling_cache,
)
from repro.planning.cache import (
    SCHEMA_VERSION,
    PlanCache,
    all_caches,
    cache_stats,
    clear_plan_caches,
    get_cache,
    load_plan_caches,
    save_plan_caches,
)
from repro.planning.warmup import (
    plan_key,
    plan_many,
    seed_from_table,
    warm_tables,
    warm_tilings,
)

# A user-tweaked A100: same display name, half the clock, a tenth of
# the bandwidth.  Every planner result must reflect these parameters.
TWEAKED_A100 = replace(
    A100, clock_ghz=A100.clock_ghz / 2, dram_bandwidth=A100.dram_bandwidth / 10
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_tiling_cache()
    clear_table_cache()
    yield
    clear_tiling_cache()
    clear_table_cache()


class TestPlanCache:
    def test_get_put_roundtrip(self):
        c = PlanCache("t1", maxsize=4, register=False)
        assert c.get(("a",)) is None
        c.put(("a",), 1)
        assert c.get(("a",)) == 1
        assert len(c) == 1 and ("a",) in c

    def test_none_values_rejected(self):
        c = PlanCache("t2", maxsize=4, register=False)
        with pytest.raises(ValueError):
            c.put(("a",), None)

    def test_put_if_absent_keeps_first(self):
        c = PlanCache("t3", maxsize=4, register=False)
        first = c.put(("k",), ["v1"])
        second = c.put(("k",), ["v2"])
        assert second is first
        assert c.get(("k",)) == ["v1"]

    def test_get_or_build_builds_once(self):
        c = PlanCache("t4", maxsize=4, register=False)
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert c.get_or_build(("k",), build) == "value"
        assert c.get_or_build(("k",), build) == "value"
        assert len(calls) == 1

    def test_lru_eviction_order(self):
        c = PlanCache("t5", maxsize=2, register=False)
        c.put(("a",), 1)
        c.put(("b",), 2)
        c.get(("a",))          # refresh "a" -> "b" is now the LRU
        c.put(("c",), 3)
        assert c.get(("b",)) is None
        assert c.get(("a",)) == 1 and c.get(("c",)) == 3
        assert c.stats().evictions == 1

    def test_stats_counters(self):
        c = PlanCache("t6", maxsize=4, register=False)
        c.get(("missing",))
        c.put(("k",), 1)
        c.get(("k",))
        st = c.stats()
        assert (st.hits, st.misses, st.size) == (1, 1, 1)
        assert st.hit_rate == pytest.approx(0.5)
        assert st.lookups == 2

    def test_peek_touches_nothing(self):
        c = PlanCache("t7", maxsize=4, register=False)
        c.put(("k",), 1)
        assert c.peek(("k",)) == 1
        assert c.peek(("nope",)) is None
        st = c.stats()
        assert st.hits == 0 and st.misses == 0

    def test_clear_resets(self):
        c = PlanCache("t8", maxsize=4, register=False)
        c.put(("k",), 1)
        c.get(("k",))
        c.clear()
        st = c.stats()
        assert len(c) == 0 and st.hits == 0 and st.misses == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache("t9", maxsize=0, register=False)

    def test_registry_lookup(self):
        assert get_cache("tiling") is tiling_cache()
        assert get_cache("table") is table_cache()
        with pytest.raises(KeyError):
            get_cache("no-such-cache")
        names = {c.name for c in all_caches()}
        assert {"tiling", "table"} <= names
        assert set(cache_stats()) >= {"tiling", "table"}


class TestThreadSafety:
    def test_concurrent_put_get_with_eviction(self):
        c = PlanCache("t10", maxsize=8, register=False)
        errors = []

        def hammer(seed):
            try:
                for i in range(300):
                    key = ((seed * 7 + i) % 32,)
                    c.put(key, key)
                    got = c.get(key)
                    assert got is None or got == key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(c) <= 8

    def test_concurrent_select_tiling_consistent(self):
        shapes = [ConvShape(32, 32, 14, 14), ConvShape(64, 32, 28, 28)]
        results = [[] for _ in shapes]
        errors = []

        def worker():
            try:
                for i, shape in enumerate(shapes):
                    results[i].append(select_tiling(shape, A100, "model"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i, shape in enumerate(shapes):
            expected = select_tiling_model(shape, A100)
            for choice in results[i]:
                assert choice.tiling == expected.tiling


class TestStaleDeviceRegression:
    """Two same-named DeviceSpecs must never alias cache entries."""

    def test_select_tiling_not_stale(self):
        shape = ConvShape(192, 160, 56, 56)
        warm_first = select_tiling(shape, A100, "model")
        tweaked = select_tiling(shape, TWEAKED_A100, "model")
        # Parameter-correct: each equals its uncached recomputation.
        assert warm_first == select_tiling_model(shape, A100)
        assert tweaked == select_tiling_model(shape, TWEAKED_A100)
        # And the tweaked device genuinely changes the outcome.
        assert tweaked.simulated_latency != warm_first.simulated_latency

    def test_select_tiling_oracle_not_stale(self):
        shape = ConvShape(64, 32, 28, 28)
        a = select_tiling(shape, A100, "oracle")
        b = select_tiling(shape, TWEAKED_A100, "oracle")
        assert a == select_tiling_oracle(shape, A100)
        assert b == select_tiling_oracle(shape, TWEAKED_A100)
        assert a.simulated_latency != b.simulated_latency

    def test_performance_table_not_stale(self):
        t_a = build_performance_table(64, 64, 14, 14, A100)
        t_b = build_performance_table(64, 64, 14, 14, TWEAKED_A100)
        fresh_a = build_performance_table(64, 64, 14, 14, A100, use_cache=False)
        fresh_b = build_performance_table(
            64, 64, 14, 14, TWEAKED_A100, use_cache=False
        )
        assert t_a.original_latency == fresh_a.original_latency
        assert t_b.original_latency == fresh_b.original_latency
        assert t_a.original_latency != t_b.original_latency
        assert (
            t_a.lookup(32, 32).total_latency
            != t_b.lookup(32, 32).total_latency
        )

    def test_cache_keys_use_fingerprint_not_name(self):
        assert A100.name == TWEAKED_A100.name
        assert A100.fingerprint() != TWEAKED_A100.fingerprint()
        shape = ConvShape(32, 32, 14, 14)
        assert select_key(shape, A100, "model") != select_key(
            shape, TWEAKED_A100, "model"
        )
        assert table_key(32, 32, 14, 14, 3, 3, A100, 32, "model") != table_key(
            32, 32, 14, 14, 3, 3, TWEAKED_A100, 32, "model"
        )

    def test_fingerprint_stable_for_equal_specs(self):
        assert A100.fingerprint() == replace(A100).fingerprint()


class TestPersistence:
    def test_round_trip(self, tmp_path):
        shape = ConvShape(32, 32, 14, 14)
        choice = select_tiling(shape, A100, "model")
        table = build_performance_table(128, 128, 14, 14, A100)
        saved = save_plan_caches(tmp_path)
        assert saved["tiling"] >= 1 and saved["table"] >= 1

        clear_plan_caches()
        loaded = load_plan_caches(tmp_path)
        assert loaded["tiling"] == saved["tiling"]
        assert loaded["table"] == saved["table"]

        # Loaded entries serve lookups without recomputation and are
        # value-equal to the originals.
        assert tiling_cache().peek(select_key(shape, A100, "model")) == choice
        reloaded = build_performance_table(128, 128, 14, 14, A100)
        assert reloaded.original_latency == table.original_latency
        assert reloaded.entries == table.entries
        assert reloaded.lookup(32, 32) == table.lookup(32, 32)

    def test_schema_version_mismatch_invalidates(self, tmp_path):
        select_tiling(ConvShape(32, 32, 14, 14), A100, "model")
        save_plan_caches(tmp_path)
        path = tmp_path / "tiling.json"
        doc = json.loads(path.read_text())
        doc["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))
        clear_plan_caches()
        assert load_plan_caches(tmp_path)["tiling"] == 0
        assert len(tiling_cache()) == 0

    def test_payload_version_mismatch_invalidates(self, tmp_path):
        select_tiling(ConvShape(32, 32, 14, 14), A100, "model")
        save_plan_caches(tmp_path)
        path = tmp_path / "tiling.json"
        doc = json.loads(path.read_text())
        doc["payload_version"] = 999
        path.write_text(json.dumps(doc))
        clear_plan_caches()
        assert load_plan_caches(tmp_path)["tiling"] == 0

    def test_corrupt_file_invalidates(self, tmp_path):
        (tmp_path / "tiling.json").write_text("{not json")
        assert load_plan_caches(tmp_path)["tiling"] == 0

    def test_missing_file_is_cold_start(self, tmp_path):
        assert load_plan_caches(tmp_path)["tiling"] == 0

    def test_memory_only_cache_refuses_persistence(self, tmp_path):
        c = PlanCache("mem-only", maxsize=4, register=False)
        with pytest.raises(RuntimeError):
            c.save(tmp_path)
        with pytest.raises(RuntimeError):
            c.load(tmp_path)


class TestWarmup:
    def test_warm_tables_seeds_both_caches(self):
        layers = [LayerShape("l1", 128, 128, 14, 14)]
        stats = warm_tables(layers, (A100,))
        assert stats.tables_built == 1
        assert stats.tilings_seeded > 0
        # The table and every core-shape tiling are now hits.
        s0 = table_cache().stats()
        build_performance_table(128, 128, 14, 14, A100)
        assert table_cache().stats().hits == s0.hits + 1
        t0 = tiling_cache().stats()
        select_tiling(ConvShape(32, 32, 14, 14), A100, "model")
        assert tiling_cache().stats().hits == t0.hits + 1

    def test_warm_tables_skips_cached(self):
        layers = [LayerShape("l1", 128, 128, 14, 14)]
        warm_tables(layers, (A100,))
        again = warm_tables(layers, (A100,))
        assert again.tables_built == 0
        assert again.tables_cached == 1

    def test_warm_tables_parallel_matches_serial(self):
        layers = [
            LayerShape("l1", 128, 128, 14, 14),
            LayerShape("l2", 64, 64, 14, 14),
        ]
        warm_tables(layers, (A100,), workers=2)
        parallel = build_performance_table(128, 128, 14, 14, A100)
        serial = build_performance_table(
            128, 128, 14, 14, A100, use_cache=False
        )
        assert parallel.entries == serial.entries
        assert parallel.original_latency == serial.original_latency

    def test_parallel_table_construction_matches_serial(self):
        parallel = build_performance_table(
            128, 96, 14, 14, A100, use_cache=False, workers=2
        )
        serial = build_performance_table(
            128, 96, 14, 14, A100, use_cache=False
        )
        assert parallel.entries == serial.entries

    def test_seed_from_table_device_mismatch(self):
        table = build_performance_table(64, 64, 14, 14, A100, use_cache=False)
        with pytest.raises(ValueError):
            seed_from_table(table, RTX2080TI)

    def test_seed_from_table_same_name_different_params_rejected(self):
        # Same display name is not enough: seeding a tweaked-A100 table
        # under the real A100 would poison both caches.
        table = build_performance_table(
            64, 64, 14, 14, TWEAKED_A100, use_cache=False
        )
        with pytest.raises(ValueError):
            seed_from_table(table, A100)

    def test_warm_tilings_oracle(self):
        shape = ConvShape(32, 32, 14, 14)
        computed = warm_tilings([(shape, A100)], method="oracle")
        assert computed == 1
        s0 = tiling_cache().stats()
        choice = select_tiling(shape, A100, "oracle")
        assert tiling_cache().stats().hits == s0.hits + 1
        assert choice == select_tiling_oracle(shape, A100)
        # Already warm: nothing recomputed.
        assert warm_tilings([(shape, A100)], method="oracle") == 0

    def test_plan_many_grid(self):
        spec = get_model_spec("resnet18")
        plans = plan_many([spec], [A100], [0.5, 0.6])
        assert set(plans) == {
            plan_key(spec, A100, 0.5),
            plan_key(spec, A100, 0.6),
        }
        for plan in plans.values():
            assert len(plan.decisions) == 16

    def test_plan_many_same_named_device_sweep(self):
        # A sweep over same-named device variants must keep one plan
        # per variant, not let the last one win.
        spec = get_model_spec("resnet18")
        plans = plan_many([spec], [A100, TWEAKED_A100], [0.6])
        assert len(plans) == 2
        p_real = plans[plan_key(spec, A100, 0.6)]
        p_tweak = plans[plan_key(spec, TWEAKED_A100, 0.6)]
        assert p_real.total_latency != p_tweak.total_latency

    def test_plan_many_same_named_spec_variants(self):
        # One architecture at two image sizes shares a display name but
        # must keep one plan per variant.
        spec224 = get_model_spec("resnet18", image_size=224)
        spec112 = get_model_spec("resnet18", image_size=112)
        assert spec224.fingerprint() != spec112.fingerprint()
        plans = plan_many([spec224, spec112], [A100], [0.6])
        assert len(plans) == 2
        p224 = plans[plan_key(spec224, A100, 0.6)]
        p112 = plans[plan_key(spec112, A100, 0.6)]
        assert p224.total_latency != p112.total_latency
        # Batched result matches the single-spec path for each variant.
        b224 = estimate_e2e_many([spec224], [A100], [0.6])[0]
        assert b224.as_milliseconds() == estimate_e2e(
            spec224, A100, budget=0.6
        ).as_milliseconds()

    def test_plan_many_matches_direct_selection(self):
        spec = get_model_spec("resnet18")
        plans = plan_many([spec], [A100], [0.6])
        from repro.codesign.pipeline import layer_shapes_from_spec

        direct = select_ranks(
            layer_shapes_from_spec(spec), A100, budget=0.6
        )
        assert plans[plan_key(spec, A100, 0.6)].ranks() == direct.ranks()

    def test_plan_many_validates_inputs(self):
        with pytest.raises(ValueError):
            plan_many([], [A100], [0.6])

    def test_estimate_e2e_many_matches_single(self):
        spec = get_model_spec("resnet18")
        batched = estimate_e2e_many([spec], [A100], [0.6])
        single = estimate_e2e(spec, A100, budget=0.6)
        assert len(batched) == 1
        assert batched[0].as_milliseconds() == single.as_milliseconds()


class TestConvShapeKeyCompleteness:
    def test_as_tuple_includes_filter_extents(self):
        shape = ConvShape(c=1, n=2, h=3, w=4, r=5, s=6)
        assert shape.as_tuple() == (1, 2, 3, 4, 5, 6)

    def test_filter_extent_reaches_cache_key(self):
        shape3 = ConvShape(32, 32, 14, 14, r=3, s=3)
        shape5 = ConvShape(32, 32, 14, 14, r=5, s=5)
        assert select_key(shape3, A100, "model") != select_key(
            shape5, A100, "model"
        )
        c3 = select_tiling(shape3, A100, "model")
        c5 = select_tiling(shape5, A100, "model")
        assert c3.simulated_latency != c5.simulated_latency
