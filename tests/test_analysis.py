"""The invariant analyzers themselves: seeded violations per rule
(true-positive + clean-pass), suppression comments, baseline
round-trip, the dynamic tracer/aliasing probes, and the CLI."""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (
    Finding,
    apply_baseline,
    load_baseline,
    run_rules,
    save_baseline,
)
from repro.analysis.dynamic import (
    arena_overlaps,
    count_allocations,
    hot_path_allocations,
    probe_input,
    trace_allocations,
)
from repro.analysis.lint import BARE_SUPPRESSION_RULE
from repro.analysis.rules import build_rules, rule_names
from repro.inference.executable import BufferArena

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(tmp_path, relpath: str, source: str, rules=None):
    """Write one fixture module and run the given rules over it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_rules(
        paths=[path],
        rules=build_rules(rules) if rules else None,
        root=tmp_path,
    )


# ---------------------------------------------------------------------------
# hot-path-alloc
# ---------------------------------------------------------------------------

HOT_VIOLATION = """
import numpy as np

class CompiledSite:
    def forward(self, x):
        return self._body(x)

    def _body(self, x):
        y = np.zeros(x.shape)      # closure-reached allocation
        return y.astype(np.float32)
"""

HOT_CLEAN = """
import numpy as np

class CompiledSite:
    def __init__(self):
        self.buf = np.zeros((4, 4))   # compile-time: fine

    def forward(self, x):
        np.multiply(x, 2.0, out=self.buf)
        return self.buf

class DirectKernel:
    def run(self, x, w):
        return np.zeros_like(x)       # kernel .run allocates by design

    def run_into(self, x, w, out, scratch):
        np.copyto(out, x)
        return out
"""


def test_hot_path_alloc_seeded_violation(tmp_path):
    findings = lint(tmp_path, "mod.py", HOT_VIOLATION, ["hot-path-alloc"])
    messages = [f.message for f in findings]
    assert any("np.zeros()" in m for m in messages)
    assert any(".astype()" in m for m in messages)
    assert all(f.symbol == "CompiledSite._body" for f in findings)


def test_hot_path_alloc_clean_pass(tmp_path):
    assert lint(tmp_path, "mod.py", HOT_CLEAN, ["hot-path-alloc"]) == []


# ---------------------------------------------------------------------------
# dtype-promotion
# ---------------------------------------------------------------------------

DTYPE_VIOLATION = """
import numpy as np

W = np.array([[1.0, 2.0]])
Z = np.zeros((3, 3))
L = np.asarray([1.0, 2.0])
D = np.float64
"""

DTYPE_CLEAN = """
import numpy as np

W = np.array([[1.0]], dtype=np.float32)
Z = np.zeros((3, 3), dtype=np.float32)
A = np.asarray(W)             # dtype-preserving on an array
B = np.zeros_like(W)          # _like preserves dtype
"""


def test_dtype_promotion_seeded_violation(tmp_path):
    findings = lint(
        tmp_path, "kernels/mod.py", DTYPE_VIOLATION, ["dtype-promotion"]
    )
    assert len(findings) == 4
    assert {"np.array" in f.message or "np.zeros" in f.message
            or "asarray" in f.message or "float64" in f.message
            for f in findings} == {True}


def test_dtype_promotion_clean_pass(tmp_path):
    assert lint(
        tmp_path, "kernels/mod.py", DTYPE_CLEAN, ["dtype-promotion"]
    ) == []


def test_dtype_promotion_out_of_scope_path(tmp_path):
    # The same violations outside kernels//runtime//nn/functional.py
    # are not this rule's business.
    assert lint(
        tmp_path, "experiments/mod.py", DTYPE_VIOLATION, ["dtype-promotion"]
    ) == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

LOCK_VIOLATION = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.closed = False

    def bump(self):
        self.count += 1          # unguarded read-modify-write

    def close(self):
        self.closed = True       # unguarded, also written in reopen

    def reopen(self):
        with self._lock:
            self.closed = False
"""

LOCK_CLEAN = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.closed = False

    def bump(self):
        with self._lock:
            self.count += 1

    def close(self):
        with self._lock:
            self.closed = True

    def _trip_locked(self):
        self.closed = True       # *_locked: caller holds the lock

    def set_only_here(self):
        self.single_writer = 1   # one writer method: no finding
"""


def test_lock_discipline_seeded_violation(tmp_path):
    findings = lint(tmp_path, "mod.py", LOCK_VIOLATION, ["lock-discipline"])
    assert len(findings) == 2
    by_symbol = {f.symbol: f.message for f in findings}
    assert "read-modify-write" in by_symbol["Pool.count"]
    assert "also written in reopen" in by_symbol["Pool.closed"]


def test_lock_discipline_clean_pass(tmp_path):
    assert lint(tmp_path, "mod.py", LOCK_CLEAN, ["lock-discipline"]) == []


def test_lock_discipline_ignores_lockless_classes(tmp_path):
    source = """
class Plain:
    def a(self):
        self.x = 1
    def b(self):
        self.x = 2
"""
    assert lint(tmp_path, "mod.py", source, ["lock-discipline"]) == []


# ---------------------------------------------------------------------------
# backend-conformance
# ---------------------------------------------------------------------------

BACKEND_PREAMBLE = """
class KernelBackend: ...
def register_backend(cls): return cls
"""

BACKEND_VIOLATION = BACKEND_PREAMBLE + """
@register_backend
class DriftedBackend(KernelBackend):
    name = "drifted"
    def core_latency(self, shape):            # missing `device`
        return 0.0
    def calibrated_dwcore_latency(self, shape, device, collapse_to=None):
        return None                           # without dwcore_latency

@register_backend
class NamelessBackend(KernelBackend):
    def core_latency(self, shape, device):
        return 0.0
"""

BACKEND_CLEAN = BACKEND_PREAMBLE + """
class _SharedBase(KernelBackend):
    def core_latency(self, shape, device):
        return 1.0

@register_backend
class GoodBackend(_SharedBase):
    name = "good"
    def kernel(self, shape, device, tiling=None):
        return None
    def dwcore_latency(self, shape, device, collapse_to=None):
        return None
"""


def test_backend_conformance_seeded_violation(tmp_path):
    findings = lint(
        tmp_path, "mod.py", BACKEND_VIOLATION, ["backend-conformance"]
    )
    messages = " | ".join(f.message for f in findings)
    assert "signature drift" in messages
    assert "all-or-none" in messages
    assert "non-empty `name`" in messages


def test_backend_conformance_clean_pass(tmp_path):
    # Hooks inherited through a local base class satisfy the protocol;
    # overriding dwcore_latency alone is the consistent direction.
    assert lint(
        tmp_path, "mod.py", BACKEND_CLEAN, ["backend-conformance"]
    ) == []


def test_backend_conformance_reads_protocol_from_registry(tmp_path):
    # A drifted protocol definition in backends/registry.py wins over
    # the pinned fallback: a subclass matching the *new* protocol is
    # clean, one matching the old protocol is flagged.
    (tmp_path / "backends").mkdir()
    (tmp_path / "backends" / "registry.py").write_text("""
class KernelBackend:
    def core_latency(self, shape, device, phase):
        raise NotImplementedError
""")
    findings = lint(
        tmp_path, "mod.py",
        BACKEND_PREAMBLE + """
@register_backend
class NewProtocol(KernelBackend):
    name = "new"
    def core_latency(self, shape, device, phase):
        return 0.0
""",
        ["backend-conformance"],
    )
    # Note run_rules only scanned mod.py; scan both files instead.
    findings = run_rules(
        paths=[tmp_path], rules=build_rules(["backend-conformance"]),
        root=tmp_path,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Suppressions and the bare-suppression pseudo-rule
# ---------------------------------------------------------------------------

def test_same_line_suppression_with_reason(tmp_path):
    source = HOT_VIOLATION.replace(
        "y = np.zeros(x.shape)      # closure-reached allocation",
        "y = np.zeros(x.shape)  # repro: ignore[hot-path-alloc] -- test fixture",
    ).replace(
        "return y.astype(np.float32)",
        "return y.astype(np.float32)  # repro: ignore[hot-path-alloc] -- test fixture",
    )
    assert lint(tmp_path, "mod.py", source, ["hot-path-alloc"]) == []


def test_function_level_suppression_covers_body(tmp_path):
    source = """
import numpy as np

class CompiledSite:
    def forward(self, x):  # repro: ignore[hot-path-alloc] -- whole-function fixture
        y = np.zeros(x.shape)
        return y.astype(np.float32)
"""
    assert lint(tmp_path, "mod.py", source, ["hot-path-alloc"]) == []


def test_suppression_is_rule_specific(tmp_path):
    source = """
import numpy as np

class CompiledSite:
    def forward(self, x):
        return np.zeros(x.shape)  # repro: ignore[dtype-promotion] -- wrong rule named
"""
    findings = lint(tmp_path, "mod.py", source, ["hot-path-alloc"])
    assert [f.rule for f in findings] == ["hot-path-alloc"]


def test_bare_suppression_is_reported(tmp_path):
    source = """
import numpy as np

class CompiledSite:
    def forward(self, x):
        return np.zeros(x.shape)  # repro: ignore[hot-path-alloc]
"""
    findings = lint(tmp_path, "mod.py", source, ["hot-path-alloc"])
    assert [f.rule for f in findings] == [BARE_SUPPRESSION_RULE]


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------

def test_baseline_round_trip_and_stale_detection(tmp_path):
    findings = lint(tmp_path, "mod.py", HOT_VIOLATION, ["hot-path-alloc"])
    assert findings
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, findings)

    loaded = load_baseline(baseline_path)
    new, matched = apply_baseline(findings, loaded)
    assert new == [] and matched == {f.key() for f in findings}

    # A fresh finding is NOT masked; a fixed one goes stale.
    extra = Finding(
        rule="hot-path-alloc", path="mod.py", line=99,
        symbol="Other.run", message="allocating call np.empty()",
    )
    new, matched = apply_baseline(list(findings[:-1]) + [extra], loaded)
    assert new == [extra]
    assert loaded - matched == {findings[-1].key()}


def test_baseline_line_numbers_do_not_churn(tmp_path):
    findings = lint(tmp_path, "mod.py", HOT_VIOLATION, ["hot-path-alloc"])
    baseline = load_baseline_after_save(tmp_path, findings)
    shifted = lint(
        tmp_path, "mod2.py", "\n\n\n" + HOT_VIOLATION, ["hot-path-alloc"]
    )
    # Same module content shifted three lines: keys must still match
    # once the path matches (identity excludes the line number).
    rekeyed = [
        Finding(f.rule, "mod.py", f.line, f.symbol, f.message)
        for f in shifted
    ]
    new, _ = apply_baseline(rekeyed, baseline)
    assert new == []


def load_baseline_after_save(tmp_path, findings):
    p = tmp_path / "b.json"
    save_baseline(p, findings)
    return load_baseline(p)


def test_baseline_version_mismatch_rejected(tmp_path):
    p = tmp_path / "b.json"
    p.write_text(json.dumps({"version": 999, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(p)


# ---------------------------------------------------------------------------
# The repo itself is clean (the acceptance gate, in-process)
# ---------------------------------------------------------------------------

def test_repo_tree_has_zero_non_baselined_findings():
    findings = run_rules(root=REPO_ROOT)
    baseline_path = REPO_ROOT / "analysis_baseline.json"
    baseline = load_baseline(baseline_path) if baseline_path.exists() else set()
    new, _ = apply_baseline(findings, baseline)
    assert new == [], "\n".join(f.render() for f in new)


# ---------------------------------------------------------------------------
# Dynamic layer: tracer + arena aliasing
# ---------------------------------------------------------------------------

def test_tracer_counts_seeded_allocations():
    with trace_allocations() as trace:
        np.zeros((2, 2))
        np.zeros((2, 2))
        np.pad(np.ones(3), 1)   # ones + pad
    assert trace.counts["zeros"] == 2
    assert trace.counts["pad"] == 1
    assert trace.counts["ones"] == 1
    # np.pad itself allocates through np.empty internally, so the
    # total is >= the four calls issued directly.
    assert trace.total >= 4
    with pytest.raises(AssertionError, match="allocations"):
        trace.assert_zero()


def test_tracer_restores_numpy_on_exit():
    before = np.zeros
    with trace_allocations():
        assert np.zeros is not before
    assert np.zeros is before


def test_count_allocations_clean_path_is_empty():
    buf = np.empty(8)
    assert count_allocations(lambda: np.multiply(buf, 2.0, out=buf)) == {}


def test_hot_path_probe_on_compiled_executable():
    from repro.codesign.pipeline import decompose_for_device
    from repro.gpusim.device import A100
    from repro.inference import compile_model
    from repro.models.registry import build_model

    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, (8, 8), budget=0.5, rank_step=2)
    exe = compile_model(model.eval(), A100, image_hw=(8, 8), max_batch=2)
    assert hot_path_allocations(exe) == {}
    assert arena_overlaps(exe) == []
    # probe_input honors the compiled shape and dtype.
    x = probe_input(exe)
    assert x.shape == (2,) + exe.input_shape and x.dtype == exe.dtype


def test_arena_overlap_detects_seeded_aliasing():
    arena = BufferArena(np.float32)
    base = arena.allocate("a", (16,))
    arena.adopt("b", base[8:])        # overlaps a
    arena.allocate("c", (4,))         # disjoint
    fake_exe = SimpleNamespace(arena=arena)
    assert arena_overlaps(fake_exe) == [("a", "b")]


# ---------------------------------------------------------------------------
# CLI: repro analyze
# ---------------------------------------------------------------------------

def analyze_cli(capsys, *args):
    from repro.cli import main

    code = main(["analyze", *args])
    return code, capsys.readouterr().out


def test_cli_analyze_reports_and_baselines(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text(HOT_VIOLATION)
    baseline = tmp_path / "baseline.json"
    common = (
        "--root", str(tmp_path), "--paths", str(mod),
        "--baseline", str(baseline),
    )

    code, out = analyze_cli(capsys, *common, "--json")
    payload = json.loads(out)
    assert code == 1 and len(payload["findings"]) == 2

    code, _ = analyze_cli(capsys, *common, "--update-baseline")
    assert code == 0 and baseline.exists()

    code, out = analyze_cli(capsys, *common, "--json")
    payload = json.loads(out)
    assert code == 0
    assert payload["findings"] == [] and payload["baselined"] == 2

    # Fixing the violation turns the baseline entries stale (still 0).
    mod.write_text(HOT_CLEAN)
    code, out = analyze_cli(capsys, *common, "--json")
    payload = json.loads(out)
    assert code == 0 and len(payload["stale_baseline"]) == 2


def test_cli_analyze_rule_subset_and_listing(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text(HOT_VIOLATION)
    code, out = analyze_cli(
        capsys, "--root", str(tmp_path), "--paths", str(mod),
        "--rules", "lock-discipline",
    )
    assert code == 0 and "0 new finding(s)" in out

    code, out = analyze_cli(capsys, "--list-rules")
    assert code == 0
    for name in rule_names():
        assert name in out
