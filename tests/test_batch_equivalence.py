"""Batched-vs-scalar equivalence suite.

The vectorized batch engine (:mod:`repro.gpusim.batch`), the batched
analytical model, and the batched tiling selectors all promise
*bit-identical* results against the scalar reference implementations —
including tie-break resolution, which depends on exact float equality.
Every assertion here is ``==``, never approx.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.batch import (
    LaunchBatch,
    compute_occupancy_batch,
    simulate_kernels_batch,
    simulate_launches_reference,
)
from repro.gpusim.device import A100, RTX2080TI
from repro.gpusim.engine import KernelLaunch, simulate_kernel
from repro.gpusim.occupancy import compute_occupancy
from repro.kernels.base import ConvShape
from repro.kernels.tdc_direct import (
    TDCDirectKernel,
    Tiling,
    is_feasible,
    is_feasible_batch,
    tdc_launch_batch,
)
from repro.perfmodel.analytical import (
    comp_latency,
    comp_latency_batch,
    comp_waves,
    comp_waves_batch,
    memory_latency,
    memory_latency_batch,
)
from repro.perfmodel.tiling import (
    clear_tiling_cache,
    enumerate_tilings,
    enumerate_tilings_scalar,
    select_tiling_model,
    select_tiling_model_scalar,
    select_tiling_oracle,
    select_tiling_oracle_scalar,
    select_tilings,
    select_tilings_grid,
    tiling_cache,
)

DEVICES = (A100, RTX2080TI)

# Edge-case launches: zero-flops (memory-only), atomic-heavy with a
# deep conflict degree, occupancy-limited (fat shared memory and
# registers), a one-block grid, a huge multi-wave grid, a
# warp-unaligned 48-thread block, and a stall-heavy staging loop.
EDGE_LAUNCHES = [
    KernelLaunch(n_blocks=64, threads_per_block=128, flops_per_block=0.0,
                 read_bytes=1e6, write_bytes=1e6, name="zero_flops"),
    KernelLaunch(n_blocks=256, threads_per_block=256, flops_per_block=1e6,
                 read_bytes=1e5, write_bytes=4e6, atomic_bytes=4e6,
                 atomic_conflict_degree=64, name="atomic_heavy"),
    KernelLaunch(n_blocks=500, threads_per_block=1024, flops_per_block=5e6,
                 read_bytes=1e7, write_bytes=1e6, smem_per_block=48 * 1024,
                 regs_per_thread=64, name="occupancy_limited"),
    KernelLaunch(n_blocks=1, threads_per_block=32, flops_per_block=1e3,
                 read_bytes=4e3, write_bytes=4e3, name="one_block"),
    KernelLaunch(n_blocks=1_000_000, threads_per_block=64, flops_per_block=2e4,
                 read_bytes=5e8, write_bytes=5e8, syncs_per_block=3,
                 name="huge_grid"),
    KernelLaunch(n_blocks=333, threads_per_block=48, flops_per_block=7.5e4,
                 read_bytes=1e5, write_bytes=3e4, name="warp_unaligned"),
    KernelLaunch(n_blocks=2048, threads_per_block=96, flops_per_block=3e5,
                 read_bytes=2e6, write_bytes=2e5, syncs_per_block=16,
                 global_stalls_per_block=128, name="stall_heavy"),
]


def _random_shapes(n_shapes: int, seed: int = 1234):
    rng = np.random.default_rng(seed)
    shapes = []
    while len(shapes) < n_shapes:
        shapes.append(
            ConvShape(
                c=int(rng.integers(1, 320)),
                n=int(rng.integers(1, 512)),
                h=int(rng.integers(1, 64)),
                w=int(rng.integers(1, 64)),
                r=int(rng.choice([1, 3, 5])),
                s=int(rng.choice([1, 3, 5])),
            )
        )
    return shapes


class TestSimulatorParity:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    @pytest.mark.parametrize("overhead", [True, False])
    def test_edge_launches_bit_identical(self, device, overhead):
        batch = LaunchBatch.from_launches(EDGE_LAUNCHES)
        out = simulate_kernels_batch(device, batch,
                                     include_launch_overhead=overhead)
        refs = simulate_launches_reference(device, batch,
                                           include_launch_overhead=overhead)
        for i, (launch, ref) in enumerate(zip(EDGE_LAUNCHES, refs)):
            assert out.total[i] == ref.total, launch.name
            assert out.compute[i] == ref.compute, launch.name
            assert out.memory[i] == ref.memory, launch.name
            assert out.sync[i] == ref.sync, launch.name
            assert out.atomic[i] == ref.atomic, launch.name
            assert out.launch[i] == ref.launch, launch.name
            assert out.waves[i] == ref.waves, launch.name
            assert out.blocks_per_sm[i] == ref.occupancy.blocks_per_sm

    def test_does_not_fit_raises_like_scalar(self):
        bad = KernelLaunch(
            n_blocks=4, threads_per_block=1024, flops_per_block=1.0,
            read_bytes=0.0, write_bytes=0.0, smem_per_block=63 * 1024,
            regs_per_thread=255, name="no_fit",
        )
        with pytest.raises(ValueError):
            simulate_kernel(RTX2080TI, bad)
        with pytest.raises(ValueError):
            simulate_kernels_batch(RTX2080TI, LaunchBatch.from_launches([bad]))

    def test_launch_roundtrip(self):
        batch = LaunchBatch.from_launches(EDGE_LAUNCHES)
        for i, launch in enumerate(EDGE_LAUNCHES):
            got = batch.launch(i, name=launch.name)
            assert got == launch

    def test_concat(self):
        b1 = LaunchBatch.from_launches(EDGE_LAUNCHES[:3])
        b2 = LaunchBatch.from_launches(EDGE_LAUNCHES[3:])
        cat = LaunchBatch.concat([b1, b2])
        assert len(cat) == len(EDGE_LAUNCHES)
        out = simulate_kernels_batch(A100, cat)
        whole = simulate_kernels_batch(A100, LaunchBatch.from_launches(EDGE_LAUNCHES))
        assert np.array_equal(out.total, whole.total)

    def test_validate_rejects_bad_fields(self):
        batch = LaunchBatch.from_launches(EDGE_LAUNCHES[:1])
        batch.atomic_conflict_degree = np.array([0])
        with pytest.raises(ValueError):
            batch.validate(A100)


class TestOccupancyParity:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    def test_random_configs(self, device):
        rng = np.random.default_rng(7)
        threads = rng.integers(1, device.max_threads_per_block + 1, size=200)
        smem = rng.integers(0, device.shared_mem_per_block + 1, size=200)
        regs = rng.integers(0, 256, size=200)
        blocks = compute_occupancy_batch(device, threads, smem, regs)
        for i in range(200):
            ref = compute_occupancy(
                device, int(threads[i]), int(smem[i]), int(regs[i])
            )
            assert blocks[i] == ref.blocks_per_sm, (threads[i], smem[i], regs[i])

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError):
            compute_occupancy_batch(A100, np.array([2048]))


class TestTdcLaunchBatchParity:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    @pytest.mark.parametrize("crsn", [True, False])
    def test_fields_match_scalar_launches(self, device, crsn):
        shape = ConvShape(96, 64, 28, 28)
        tilings = enumerate_tilings_scalar(shape, device)
        th = [t.th for t in tilings]
        tw = [t.tw for t in tilings]
        tc = [t.tc for t in tilings]
        batch = tdc_launch_batch(shape, device, th, tw, tc, crsn_layout=crsn)
        for i, t in enumerate(tilings):
            (ref,) = TDCDirectKernel(t, crsn_layout=crsn).launches(shape, device)
            got = batch.launch(i, name=ref.name)
            assert got == ref

    def test_feasibility_mask_matches_scalar(self):
        shape = ConvShape(64, 32, 56, 56)
        rng = np.random.default_rng(3)
        th = rng.integers(1, 64, size=300)
        tw = rng.integers(1, 64, size=300)
        tc = rng.integers(1, 300, size=300)
        for device in DEVICES:
            mask = is_feasible_batch(shape, device, th, tw, tc)
            for i in range(300):
                t = Tiling(int(th[i]), int(tw[i]), int(tc[i]))
                assert mask[i] == is_feasible(t, shape, device)

    def test_infeasible_candidate_raises(self):
        shape = ConvShape(64, 32, 56, 56)
        with pytest.raises(ValueError):
            tdc_launch_batch(shape, RTX2080TI, [56], [56], [256])


class TestAnalyticalBatchParity:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    def test_eq15_eq19_elementwise(self, device):
        shape = ConvShape(64, 48, 56, 56)
        tilings = enumerate_tilings(shape, device)
        th = np.array([t.th for t in tilings])
        tw = np.array([t.tw for t in tilings])
        tc = np.array([t.tc for t in tilings])
        comp = comp_latency_batch(shape, device, th, tw, tc)
        waves = comp_waves_batch(shape, device, th, tw, tc)
        mem = memory_latency_batch(shape, device, th, tw, tc)
        for i, t in enumerate(tilings):
            assert comp[i] == comp_latency(shape, t, device), t
            assert waves[i] == comp_waves(shape, t, device), t
            assert mem[i] == memory_latency(shape, t, device), t

    def test_zero_occupancy_raises(self):
        shape = ConvShape(64, 32, 56, 56)
        # A 56x56x256 tile's shared-memory cube cannot fit on 2080Ti.
        with pytest.raises(ValueError):
            comp_waves_batch(shape, RTX2080TI, [56], [56], [64])


class TestSelectorEquivalence:
    """The headline property: batched selectors return the identical
    TilingChoice (tiling, latencies, method) as the scalar reference
    across randomized shapes x both seed devices x both methods."""

    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    def test_enumeration_identical(self, device):
        for shape in _random_shapes(12, seed=42):
            try:
                ref = enumerate_tilings_scalar(shape, device)
            except ValueError:
                with pytest.raises(ValueError):
                    enumerate_tilings(shape, device)
                continue
            assert enumerate_tilings(shape, device) == ref, shape

    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    @pytest.mark.parametrize("method", ["oracle", "model"])
    def test_selection_identical(self, device, method):
        batched = select_tiling_oracle if method == "oracle" else select_tiling_model
        scalar = (
            select_tiling_oracle_scalar
            if method == "oracle"
            else select_tiling_model_scalar
        )
        for shape in _random_shapes(10, seed=99):
            try:
                ref = scalar(shape, device)
            except ValueError:
                with pytest.raises(ValueError):
                    batched(shape, device)
                continue
            got = batched(shape, device)
            # Dataclass equality covers tiling, all three latencies
            # (exact float equality), and the method tag.
            assert got == ref, (shape, device.name, method)

    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    @pytest.mark.parametrize("method", ["oracle", "model"])
    def test_explicit_candidates_identical(self, device, method):
        shape = ConvShape(64, 32, 28, 28)
        cands = enumerate_tilings(shape, device)[::3]
        if method == "oracle":
            got = select_tiling_oracle(shape, device, candidates=cands)
            ref = select_tiling_oracle_scalar(shape, device, candidates=cands)
        else:
            got = select_tiling_model(shape, device, candidates=cands)
            ref = select_tiling_model_scalar(shape, device, candidates=cands)
        assert got == ref


class TestGridSelector:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    @pytest.mark.parametrize("method", ["oracle", "model"])
    def test_grid_matches_per_shape(self, device, method):
        shapes = [
            ConvShape(32, 32, 28, 28),
            ConvShape(32, 64, 28, 28),
            ConvShape(64, 32, 28, 28),
            ConvShape(96, 64, 14, 14),
        ]
        grid = select_tilings_grid(shapes, device, method=method)
        single = (
            select_tiling_oracle if method == "oracle" else select_tiling_model
        )
        for shape, choice in zip(shapes, grid):
            assert choice == single(shape, device), shape

    def test_empty_grid(self):
        assert select_tilings_grid([], A100, method="oracle") == []

    def test_cached_front_door_dedups_and_seeds(self):
        clear_tiling_cache()
        shapes = [
            ConvShape(32, 32, 14, 14),
            ConvShape(32, 32, 14, 14),  # duplicate: computed once
            ConvShape(64, 32, 14, 14),
        ]
        out = select_tilings(shapes, A100, method="oracle")
        assert out[0] == out[1]
        assert out[0] == select_tiling_oracle(shapes[0], A100)
        # All three requests are now cache hits.
        from repro.perfmodel.tiling import select_key

        for shape in shapes:
            assert tiling_cache().peek(select_key(shape, A100, "oracle")) is not None

    def test_bad_method_raises(self):
        with pytest.raises(ValueError):
            select_tilings_grid([ConvShape(8, 8, 8, 8)], A100, method="bogus")
        with pytest.raises(ValueError):
            select_tilings([ConvShape(8, 8, 8, 8)], A100, method="bogus")
