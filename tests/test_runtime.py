"""Parallel execution engine: worker pool, shard planning, and the
bit-identical-to-serial contract across formats, backends, and batch
sizes."""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.inference.executable as executable_mod
from repro.codesign.pipeline import decompose_for_device
from repro.gpusim.device import A100
from repro.inference import compile_model, compile_plan, plan_model
from repro.kernels.fused import FusedChainExecutor
from repro.models.registry import build_model
from repro.nn.cp_conv import CPConv2d
from repro.nn.module import Module, Sequential
from repro.nn.tt_conv import TTConv2d
from repro.nn.tucker_conv import TuckerConv2d
from repro.perfmodel.parallel import (
    FORK_JOIN_EQUIV_S,
    estimated_parallel_latency,
    parallel_speedup_estimate,
    should_parallelize,
)
from repro.runtime.engine import (
    MIN_BATCH_SHARD,
    plan_batch_shards,
    plan_row_shards,
)
from repro.runtime.pool import (
    MAX_WORKERS,
    WorkerPool,
    _reset_pool_for_tests,
    default_threads,
    get_pool,
    pool_stats,
    resolve_threads,
)

def force_parallel(monkeypatch):
    """Make the compile-time gate say yes for every site, so shard
    machinery is exercised even on tiny test geometries."""
    monkeypatch.setattr(
        executable_mod, "should_parallelize",
        lambda lat, threads: (threads > 1, 99.0),
    )


def make_site(fmt: str, hw: int = 12) -> Module:
    if fmt == "tucker":
        mod = TuckerConv2d(6, 8, 3, rank_in=3, rank_out=4,
                           stride=1, padding=1, seed=1)
    elif fmt == "cp":
        mod = CPConv2d(6, 8, 3, rank=4, stride=1, padding=1, seed=2)
    else:
        mod = TTConv2d(6, 8, 3, rank1=2, rank2=2,
                       stride=1, padding=1, seed=3)
    return Sequential(mod).eval()


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------

def test_run_tasks_returns_results_in_order():
    pool = WorkerPool()
    pool.ensure_workers(3)
    results = pool.run_tasks([lambda i=i: i * i for i in range(8)])
    assert results == [i * i for i in range(8)]


def test_run_tasks_caller_participates():
    pool = WorkerPool()  # zero workers: the caller must do everything
    ran_in = []
    results = pool.run_tasks([
        lambda: ran_in.append(threading.current_thread().name) or 1,
    ])
    assert results == [1]
    assert ran_in == [threading.current_thread().name]


def test_run_tasks_exception_propagates_after_all_complete():
    pool = WorkerPool()
    pool.ensure_workers(2)
    done = []

    def ok(i):
        done.append(i)
        return i

    with pytest.raises(RuntimeError, match="shard boom"):
        pool.run_tasks([
            lambda: (_ for _ in ()).throw(RuntimeError("shard boom")),
            lambda: ok(1),
            lambda: ok(2),
        ])
    # A failed shard never leaves another shard still writing: every
    # surviving task finished before the join re-raised.
    assert sorted(done) == [1, 2]


def test_task_counter_exact_under_contention():
    """Regression (lock-discipline): ``tasks_executed`` was bumped
    outside the pool lock, so concurrent ``run_tasks`` callers could
    lose updates.  With the guard the count is exact."""
    pool = WorkerPool()
    pool.ensure_workers(2)
    callers, rounds, per_round = 8, 25, 3
    barrier = threading.Barrier(callers)

    def hammer():
        barrier.wait()
        for _ in range(rounds):
            pool.run_tasks([lambda: None] * per_round)

    threads = [threading.Thread(target=hammer) for _ in range(callers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert pool.tasks_executed == callers * rounds * per_round


def test_ensure_workers_caps_at_max():
    pool = WorkerPool()
    pool.ensure_workers(MAX_WORKERS + 50)
    assert pool.n_workers == MAX_WORKERS


def test_get_pool_is_a_process_singleton():
    _reset_pool_for_tests()
    a = get_pool(2)
    b = get_pool()
    assert a is b
    assert pool_stats()["workers"] == 2


def test_default_threads_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "3")
    assert default_threads() == 3
    monkeypatch.setenv("REPRO_NUM_THREADS", "999")
    assert default_threads() == MAX_WORKERS
    monkeypatch.setenv("REPRO_NUM_THREADS", "0")
    with pytest.raises(ValueError):
        default_threads()
    monkeypatch.setenv("REPRO_NUM_THREADS", "lots")
    with pytest.raises(ValueError):
        default_threads()


def test_resolve_threads():
    assert resolve_threads(1) == 1
    assert resolve_threads(4) == 4
    assert resolve_threads(MAX_WORKERS + 9) == MAX_WORKERS
    with pytest.raises(ValueError):
        resolve_threads(0)
    assert resolve_threads(None) == default_threads()


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

def test_batch_shards_cover_and_never_singleton():
    for batch in range(1, 33):
        for threads in (2, 3, 4, 8):
            shards = plan_batch_shards(batch, threads)
            if batch < 2 * MIN_BATCH_SHARD:
                assert shards == []
                continue
            assert len(shards) <= threads
            assert shards[0][0] == 0 and shards[-1][1] == batch
            for (lo, hi), (nlo, _) in zip(shards, shards[1:]):
                assert hi == nlo
            assert all(hi - lo >= MIN_BATCH_SHARD for lo, hi in shards)


def test_batch_shards_off_for_serial():
    assert plan_batch_shards(16, 1) == []


def test_row_shards_cover_whole_tiles():
    starts = [0, 4, 8, 12]
    shards = plan_row_shards(starts, 14, 3)
    assert shards[0][0] == 0 and shards[-1][1] == 14
    for (lo, hi), (nlo, _) in zip(shards, shards[1:]):
        assert hi == nlo
    # Every boundary except the last is a tile start.
    for lo, _ in shards:
        assert lo in starts


def test_row_shards_rows_cap_splits_further():
    starts = list(range(0, 32, 4))
    coarse = plan_row_shards(starts, 32, 2)
    fine = plan_row_shards(starts, 32, 2, rows_cap=4)
    assert len(fine) > len(coarse)


# ---------------------------------------------------------------------------
# The compile-time perf-model gate
# ---------------------------------------------------------------------------

def test_threads_one_is_always_serial():
    go, est = should_parallelize(1.0, 1)
    assert not go and est == 1.0


def test_large_sites_shard_small_sites_do_not():
    go_big, est_big = should_parallelize(1e-5, 4)
    assert go_big and est_big > 1.2
    go_small, _ = should_parallelize(1e-7, 4)
    assert not go_small


def test_parallel_latency_model_shape():
    # More lanes help until the fork/join term dominates.
    assert estimated_parallel_latency(1e-5, 4) < 1e-5
    lat = 8 * FORK_JOIN_EQUIV_S
    assert parallel_speedup_estimate(lat, 2) > parallel_speedup_estimate(
        lat, MAX_WORKERS
    )


# ---------------------------------------------------------------------------
# Concurrent determinism: parallel == serial, bit for bit
# ---------------------------------------------------------------------------

CASES = [
    ("tucker", "tdc-model"),
    ("tucker", "cudnn"),
    ("tucker", "fused"),
    ("cp", "auto"),
    ("cp", "fused"),
    ("tt", "auto"),
    ("tt", "fused"),
]


@pytest.mark.parametrize("fmt,backend", CASES)
def test_parallel_bit_identical_to_serial(fmt, backend, monkeypatch):
    force_parallel(monkeypatch)
    hw = 12
    model = make_site(fmt, hw)
    kwargs = dict(
        image_hw=(hw, hw), in_channels=6, core_backend=backend,
        max_batch=16,
    )
    serial = compile_model(model, A100, threads=1, **kwargs)
    par = compile_model(model, A100, threads=4, **kwargs)
    assert serial.threads == 1 and par.threads == 4
    assert par.parallel_report()["parallel_sites"] >= 1
    rng = np.random.default_rng(7)
    for n in (1, 4, 16):
        x = rng.standard_normal((n, 6, hw, hw)).astype(serial.dtype)
        np.testing.assert_array_equal(
            serial.run(x), par.run(x),
            err_msg=f"{fmt}/{backend} deviates from serial at batch {n}",
        )


def test_whole_model_parallel_bit_identical(monkeypatch):
    force_parallel(monkeypatch)
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, (8, 8), budget=0.5, rank_step=2)
    model.eval()
    serial = compile_model(model, A100, image_hw=(8, 8), max_batch=16,
                           threads=1)
    par = compile_model(model, A100, image_hw=(8, 8), max_batch=16,
                        threads=3)
    rng = np.random.default_rng(11)
    for n in (1, 4, 16):
        x = rng.standard_normal((n, 3, 8, 8)).astype(serial.dtype)
        np.testing.assert_array_equal(serial.run(x), par.run(x))


def test_perf_model_selects_parallel_sites_organically():
    # No gate patching: the real fork/join model must shard the preset
    # factored sites at realistic geometry, and row-block tasks must be
    # available for the small-batch axis.
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, (32, 32), budget=0.5, rank_step=2,
                         theta=0.0)
    model.eval()
    par = compile_model(model, A100, image_hw=(32, 32), max_batch=4,
                        threads=4)
    rep = par.parallel_report()
    assert rep["parallel_sites"] >= 1
    assert any(s["row_tasks"] >= 2 for s in rep["sites"].values())
    serial = compile_model(model, A100, image_hw=(32, 32), max_batch=4,
                           threads=1)
    x = np.random.default_rng(3).standard_normal((4, 3, 32, 32)).astype(
        serial.dtype
    )
    np.testing.assert_array_equal(serial.run(x), par.run(x))


# ---------------------------------------------------------------------------
# Zero-allocation parallel hot path
# ---------------------------------------------------------------------------

def test_parallel_hot_path_allocates_nothing(monkeypatch, count_allocations):
    force_parallel(monkeypatch)
    model = build_model("resnet_tiny", seed=0)
    decompose_for_device(model, A100, (8, 8), budget=0.5, rank_step=2)
    model.eval()
    exe = compile_model(model, A100, image_hw=(8, 8), max_batch=8,
                        threads=4)
    assert exe.parallel_report()["parallel_sites"] >= 1
    rng = np.random.default_rng(9)
    for n in (1, 8):  # row-block axis and batch-shard axis
        x = rng.standard_normal((n, 3, 8, 8)).astype(exe.dtype)
        exe.run(x)  # warm (first touch)
        counts = count_allocations(lambda: exe.run(x))
        assert counts == {}, (n, counts)


# ---------------------------------------------------------------------------
# Plan annotation and introspection
# ---------------------------------------------------------------------------

def _traced_plan(model, hw):
    return plan_model(model, A100, (hw, hw), in_channels=6)


def test_threads_one_leaves_plan_untouched():
    model = make_site("tucker", 12)
    plan = _traced_plan(model, 12)
    exe = compile_plan(plan, model, A100, image_hw=(12, 12),
                       in_channels=6, threads=1)
    assert exe.plan is plan
    assert exe.plan.parallel_kernels() == 0
    assert all(s._parallel is None for s in exe.sites())


def test_parallel_compile_annotates_a_plan_copy(monkeypatch):
    force_parallel(monkeypatch)
    model = make_site("tucker", 12)
    plan = _traced_plan(model, 12)
    exe = compile_plan(plan, model, A100, image_hw=(12, 12),
                       in_channels=6, max_batch=8, threads=3)
    assert exe.plan is not plan
    assert exe.plan.parallel_kernels() >= 1
    # The planner's plan (cacheable) stays untouched.
    assert plan.parallel_kernels() == 0
    assert all(not k.parallel for k in plan.kernels)


def test_arena_report_accounts_per_worker_scratch(monkeypatch):
    force_parallel(monkeypatch)
    model = make_site("tucker", 12)
    kwargs = dict(image_hw=(12, 12), in_channels=6,
                  core_backend="tdc-model", max_batch=8)
    serial = compile_model(model, A100, threads=1, **kwargs)
    par = compile_model(model, A100, threads=3, **kwargs)
    ser_rep, par_rep = serial.arena_report(), par.arena_report()
    assert ser_rep["per_worker_scratch_bytes"] == 0
    assert par_rep["per_worker_scratch_bytes"] > 0
    # Lane scratch lives *in* the arena under <site>.scratch.w<lane>.*
    # names, so the reported total stays truthful: the parallel arena
    # is exactly the serial arena plus the extra lanes.
    assert par_rep["arena_bytes"] == (
        ser_rep["arena_bytes"] + par_rep["per_worker_scratch_bytes"]
    )
    lanes = [n for n in par.arena.names() if ".scratch.w" in n]
    assert sum(par.arena.get(n).nbytes for n in lanes) == (
        par_rep["per_worker_scratch_bytes"]
    )
    assert par_rep["workers"] == 3


def test_parallel_report_contents(monkeypatch):
    force_parallel(monkeypatch)
    model = make_site("tucker", 12)
    exe = compile_model(model, A100, image_hw=(12, 12), in_channels=6,
                        core_backend="tdc-model", max_batch=8, threads=3)
    rep = exe.parallel_report()
    assert rep["threads"] == 3
    assert rep["parallel_sites"] == 1 and rep["serial_sites"] == 0
    (site,) = rep["sites"].values()
    assert site["est_speedup"] > 1.0
    assert site["per_worker_scratch_bytes"] > 0


# ---------------------------------------------------------------------------
# FusedChainExecutor thread-safety contract (satellite regression)
# ---------------------------------------------------------------------------

def _fused_executor(max_batch=2):
    mod = make_site("tucker", 12).layer0
    w = mod.export_weights()
    ex = FusedChainExecutor(
        "tucker", w["w_in"], w["core"], w["w_out"], w["bias"],
        in_hw=(12, 12), kernel_size=3, stride=1, padding=1,
        max_batch=max_batch,
    )
    scratch = {
        name: np.zeros(shape, dtype=ex.dtype)
        for name, shape in ex.scratch_shapes().items()
    }
    ex.bind(scratch)
    return ex


def test_fused_run_accepts_explicit_scratch():
    ex = _fused_executor()
    x = np.random.default_rng(0).standard_normal((2, 6, 12, 12))
    out_a = np.zeros((2, ex.out_channels, ex.oh, ex.ow))
    out_b = np.zeros_like(out_a)
    ref = ex.run(x, out_a).copy()  # bound-scratch default path
    own = {
        name: np.zeros(shape, dtype=ex.dtype)
        for name, shape in ex.scratch_shapes().items()
    }
    np.testing.assert_array_equal(ex.run(x, out_b, scratch=own), ref)


def test_fused_concurrent_run_disjoint_scratch():
    """Concurrent ``run`` calls with disjoint scratch never corrupt
    each other — the documented thread-safety contract."""
    ex = _fused_executor(max_batch=2)
    rng = np.random.default_rng(1)
    xs = [rng.standard_normal((2, 6, 12, 12)) for _ in range(4)]
    outs = [np.zeros((2, ex.out_channels, ex.oh, ex.ow)) for _ in xs]
    refs = [ex.run(x, np.zeros_like(outs[0])).copy() for x in xs]
    scratches = [
        {
            name: np.zeros(shape, dtype=ex.dtype)
            for name, shape in ex.scratch_shapes().items()
        }
        for _ in xs
    ]
    for _ in range(5):  # several rounds to give corruption a chance
        barrier = threading.Barrier(len(xs))

        def worker(i):
            barrier.wait()
            ex.run(xs[i], outs[i], scratch=scratches[i])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(xs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)


def test_fused_bound_scratch_is_exposed():
    ex = _fused_executor()
    assert set(ex.bound_scratch) == set(ex.scratch_shapes())


# ---------------------------------------------------------------------------
# Serving integration: sessions and fleets share the process pool
# ---------------------------------------------------------------------------

def test_session_with_threads_matches_serial(monkeypatch):
    from repro.serving import SessionRegistry

    force_parallel(monkeypatch)
    registry = SessionRegistry()
    try:
        ser = registry.create(
            "resnet_tiny", A100, image_hw=(8, 8), max_batch=4,
            threads=1, name="serial",
        )
        par = registry.create(
            "resnet_tiny", A100, image_hw=(8, 8), max_batch=4,
            threads=3, name="parallel",
        )
        assert par.executable.threads == 3
        assert par.executable.parallel_report()["parallel_sites"] >= 1
        x = np.random.default_rng(2).standard_normal((3, 8, 8))
        np.testing.assert_array_equal(
            ser.infer(x, timeout=60.0), par.infer(x, timeout=60.0)
        )
    finally:
        registry.close_all()


def test_fleet_replicas_share_one_pool(monkeypatch):
    from repro.serving.fleet import deploy_fleet

    force_parallel(monkeypatch)
    _reset_pool_for_tests()
    fleet = deploy_fleet(
        "resnet_tiny", [A100], replicas_per_device=2, image_hw=(8, 8),
        max_batch=4, fallback_budget=None, threads=3,
    )
    try:
        x = np.random.default_rng(4).standard_normal((3, 8, 8))
        y = fleet.infer(x, timeout=60.0)
        assert y.shape[-1] == 10
        # 2 replicas, one shared pool: threads - 1 workers, not 2x.
        assert pool_stats()["workers"] == 2
    finally:
        fleet.close()
