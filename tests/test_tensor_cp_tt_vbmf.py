"""Tests for CP-ALS, TT-SVD, and EVBMF rank estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.cp import CPTensor, cp_als, cp_conv_kernel, cp_relative_error
from repro.tensor.tt import TTTensor, tt_conv_kernel, tt_relative_error, tt_svd
from repro.tensor.vbmf import evbmf, evbmf_rank, suggest_tucker2_ranks


def rank_r_tensor(rng, shape, rank):
    """Exact CP-rank-``rank`` tensor."""
    factors = [rng.standard_normal((dim, rank)) for dim in shape]
    t = np.zeros(shape)
    for k in range(rank):
        outer = factors[0][:, k]
        for f in factors[1:]:
            outer = np.multiply.outer(outer, f[:, k])
        t += outer
    return t


class TestCP:
    def test_recovers_exact_low_rank(self, rng):
        t = rank_r_tensor(rng, (6, 5, 4), 2)
        cp = cp_als(t, rank=3, n_iter=200, seed=0)
        assert cp_relative_error(t, cp) < 1e-5

    def test_full_reconstruction_shape(self, rng):
        t = rng.standard_normal((4, 3, 5))
        cp = cp_als(t, rank=2, n_iter=10)
        assert cp.to_full().shape == t.shape

    def test_error_decreases_with_rank(self, rng):
        t = rng.standard_normal((5, 5, 5))
        errs = [
            cp_relative_error(t, cp_als(t, rank=r, n_iter=60, seed=0))
            for r in (1, 4, 16)
        ]
        assert errs[2] <= errs[0] + 0.05

    def test_matrix_case_matches_svd_error(self, rng):
        m = rng.standard_normal((8, 6))
        cp = cp_als(m, rank=3, n_iter=200, seed=0)
        u, s, vt = np.linalg.svd(m)
        svd_err = np.sqrt(np.sum(s[3:] ** 2)) / np.linalg.norm(m)
        assert cp_relative_error(m, cp) <= svd_err + 0.02

    def test_weights_nonnegative(self, rng):
        cp = cp_als(rng.standard_normal((4, 4, 4)), rank=3, n_iter=20)
        assert np.all(cp.weights >= 0)

    def test_n_params(self, rng):
        cp = cp_als(rng.standard_normal((4, 5, 6)), rank=2, n_iter=5)
        assert cp.n_params() == 2 * (4 + 5 + 6) + 2

    def test_conv_kernel_requires_4d(self, rng):
        with pytest.raises(ValueError):
            cp_conv_kernel(rng.standard_normal((3, 3, 3)), rank=2)

    def test_conv_kernel_roundtrip(self, rng):
        k = rank_r_tensor(rng, (6, 5, 3, 3), 2)
        cp = cp_conv_kernel(k, rank=4, n_iter=150)
        assert cp_relative_error(k, cp) < 1e-3

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            cp_als(rng.standard_normal((3, 3)), rank=0)

    def test_cptensor_validation(self, rng):
        with pytest.raises(ValueError):
            CPTensor(weights=np.ones(2), factors=[rng.standard_normal((3, 3))])


class TestTT:
    def test_full_ranks_lossless(self, rng):
        t = rng.standard_normal((4, 5, 6))
        tt = tt_svd(t, max_ranks=[4, 24])
        assert tt_relative_error(t, tt) < 1e-10

    def test_rank_capping(self, rng):
        t = rng.standard_normal((4, 5, 6))
        tt = tt_svd(t, max_ranks=[2, 3])
        assert tt.ranks == (2, 3)

    def test_boundary_ranks_one(self, rng):
        tt = tt_svd(rng.standard_normal((3, 4, 5)), max_ranks=[2, 2])
        assert tt.cores[0].shape[0] == 1
        assert tt.cores[-1].shape[-1] == 1

    def test_error_monotone_in_rank(self, rng):
        t = rng.standard_normal((5, 6, 4))
        e_small = tt_relative_error(t, tt_svd(t, [1, 1]))
        e_big = tt_relative_error(t, tt_svd(t, [4, 4]))
        assert e_big <= e_small + 1e-9

    def test_matrix_tt_equals_svd_truncation(self, rng):
        m = rng.standard_normal((6, 8))
        tt = tt_svd(m, max_ranks=[2])
        u, s, vt = np.linalg.svd(m, full_matrices=False)
        svd_err = np.sqrt(np.sum(s[2:] ** 2)) / np.linalg.norm(m)
        assert tt_relative_error(m, tt) == pytest.approx(svd_err, abs=1e-8)

    def test_conv_kernel_flattens_spatial(self, rng):
        k = rng.standard_normal((6, 5, 3, 3))
        tt = tt_conv_kernel(k, max_ranks=[3, 4])
        assert tt.full_shape == (6, 5, 9)

    def test_rank_count_validation(self, rng):
        with pytest.raises(ValueError):
            tt_svd(rng.standard_normal((3, 4, 5)), max_ranks=[2])

    def test_tttensor_validation(self, rng):
        with pytest.raises(ValueError):
            TTTensor(cores=[rng.standard_normal((2, 3, 1))])  # boundary != 1

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_never_larger_norm_gap(self, seed):
        rng = np.random.default_rng(seed)
        t = rng.standard_normal((3, 4, 3))
        tt = tt_svd(t, max_ranks=[3, 3])
        # TT-SVD error is bounded by sqrt(d-1) * best rank truncation.
        assert tt_relative_error(t, tt) <= np.sqrt(2.0) + 1e-9


class TestEVBMF:
    def test_recovers_planted_rank(self, rng):
        u = rng.standard_normal((40, 3))
        v = rng.standard_normal((3, 60))
        y = u @ v + 0.01 * rng.standard_normal((40, 60))
        assert evbmf(y).rank == 3

    def test_pure_noise_rank_zero(self, rng):
        y = 0.1 * rng.standard_normal((30, 50))
        assert evbmf(y).rank <= 1

    def test_transposed_input(self, rng):
        u = rng.standard_normal((60, 2))
        v = rng.standard_normal((2, 30))
        y = u @ v + 0.01 * rng.standard_normal((60, 30))  # rows > cols
        res = evbmf(y)
        assert res.rank == 2

    def test_reconstruction_shape(self, rng):
        y = rng.standard_normal((10, 20))
        res = evbmf(y)
        if res.rank > 0:
            recon = res.u @ np.diag(res.s) @ res.v
            assert recon.shape == y.shape

    def test_known_sigma2(self, rng):
        u = rng.standard_normal((30, 2))
        v = rng.standard_normal((2, 40))
        y = u @ v + 0.05 * rng.standard_normal((30, 40))
        res = evbmf(y, sigma2=0.05**2)
        assert res.rank == 2

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError):
            evbmf(rng.standard_normal((3, 3, 3)))

    def test_rank_floor(self, rng):
        y = 0.01 * rng.standard_normal((20, 30))
        assert evbmf_rank(y, min_rank=2) >= 2

    def test_suggest_tucker2_ranks(self, rng):
        from repro.tensor.unfold import mode_dot

        core = rng.standard_normal((3, 4, 3, 3))
        u2 = rng.standard_normal((16, 3))
        u1 = rng.standard_normal((12, 4))
        k = mode_dot(mode_dot(core, u2, 0), u1, 1)
        k = k + 0.01 * rng.standard_normal(k.shape)
        r_out, r_in = suggest_tucker2_ranks(k)
        assert 2 <= r_out <= 6
        assert 2 <= r_in <= 8

    def test_suggest_weaken_validation(self, rng):
        k = rng.standard_normal((8, 8, 3, 3))
        with pytest.raises(ValueError):
            suggest_tucker2_ranks(k, weaken=0.0)

    def test_suggest_requires_4d(self, rng):
        with pytest.raises(ValueError):
            suggest_tucker2_ranks(rng.standard_normal((4, 4)))
