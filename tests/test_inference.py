"""Tests for execution plans and end-to-end latency estimation."""

import pytest

from repro.backends import backend_names
from repro.codesign.pipeline import layer_shapes_from_spec
from repro.codesign.rank_selection import select_ranks
from repro.gpusim.device import A100
from repro.inference import CORE_BACKENDS
from repro.inference.engine import estimate_e2e
from repro.inference.plan import plan_dense_model, plan_tucker_model
from repro.models.arch_specs import get_model_spec


def test_paper_backends_are_registered():
    assert set(CORE_BACKENDS) <= set(backend_names())


@pytest.fixture(scope="module")
def resnet18_setup():
    spec = get_model_spec("resnet18")
    plan = select_ranks(layer_shapes_from_spec(spec), A100, budget=0.65)
    return spec, plan


class TestDensePlan:
    def test_covers_all_layers(self, resnet18_setup):
        spec, _ = resnet18_setup
        plan = plan_dense_model(spec, A100)
        conv_kernels = [k for k in plan.kernels if k.kind in ("conv", "pointwise")]
        assert len(conv_kernels) == len(spec.convs())

    def test_total_is_sum(self, resnet18_setup):
        spec, _ = resnet18_setup
        plan = plan_dense_model(spec, A100)
        assert plan.total_latency() == pytest.approx(
            sum(k.latency for k in plan.kernels)
        )

    def test_bn_relu_toggle(self, resnet18_setup):
        spec, _ = resnet18_setup
        with_bn = plan_dense_model(spec, A100, include_bn_relu=True)
        without = plan_dense_model(spec, A100, include_bn_relu=False)
        assert with_bn.total_latency() > without.total_latency()

    def test_latency_by_kind(self, resnet18_setup):
        spec, _ = resnet18_setup
        plan = plan_dense_model(spec, A100)
        by_kind = plan.latency_by_kind()
        assert "conv" in by_kind and by_kind["conv"] > 0


class TestTuckerPlan:
    def test_decomposed_layer_has_three_kernels(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        plan = plan_tucker_model(spec, rank_plan, A100, core_backend="tdc-model")
        decomposed = [d for d in rank_plan.decisions if d.decomposed]
        cores = [k for k in plan.kernels if k.kind == "core"]
        assert len(cores) == len(decomposed)
        pw = [k for k in plan.kernels if k.kind == "pointwise"]
        assert len(pw) >= 2 * len(decomposed)

    @pytest.mark.parametrize("backend", backend_names())
    def test_all_backends_work(self, resnet18_setup, backend):
        spec, rank_plan = resnet18_setup
        plan = plan_tucker_model(spec, rank_plan, A100, core_backend=backend)
        assert plan.total_latency() > 0

    def test_unknown_backend_raises(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        with pytest.raises(ValueError):
            plan_tucker_model(spec, rank_plan, A100, core_backend="cutlass")

    def test_oracle_at_least_as_fast_as_model(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        oracle = plan_tucker_model(spec, rank_plan, A100, core_backend="tdc-oracle")
        model = plan_tucker_model(spec, rank_plan, A100, core_backend="tdc-model")
        assert oracle.total_latency() <= model.total_latency() + 1e-12


class TestE2E:
    def test_paper_ordering_resnet18(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        res = estimate_e2e(spec, A100, rank_plan=rank_plan)
        # The Fig. 8 bar ordering: original > TK-cuDNN > TK-TVM >= TDC.
        assert res.original > res.tucker_tdc_oracle
        assert res.tucker_cudnn > res.tucker_tdc_oracle
        assert res.tucker_tvm >= res.tucker_tdc_oracle
        assert res.tucker_tdc_model >= res.tucker_tdc_oracle

    def test_speedup_accessors(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        res = estimate_e2e(spec, A100, rank_plan=rank_plan)
        assert res.speedup_over_original() > 1.0
        assert res.speedup_over_tucker_cudnn() > 1.0
        assert res.speedup_over_tucker_tvm() >= 0.9
        with pytest.raises(ValueError):
            res.speedup_over_original("nonsense")

    def test_as_milliseconds(self, resnet18_setup):
        spec, rank_plan = resnet18_setup
        res = estimate_e2e(spec, A100, rank_plan=rank_plan)
        ms = res.as_milliseconds()
        assert set(ms) == {
            "original", "tucker_cudnn", "tucker_tvm",
            "tucker_tdc_oracle", "tucker_tdc_model",
        }
        assert ms["original"] == pytest.approx(res.original * 1e3)
