"""Decomposition formats as a planning axis: the format registry,
CP/TT conv modules, format-aware rank selection, and mixed-format
compiled execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import backend_names
from repro.codesign.format_search import (
    best_format_under_budget,
    layer_format_candidates,
)
from repro.codesign.pipeline import decompose_for_device
from repro.codesign.rank_selection import LayerShape, select_ranks
from repro.gpusim.device import A100
from repro.inference import compile_plan, plan_model
from repro.inference.executable import CompiledCPConv2d, CompiledTTConv2d
from repro.models.introspection import (
    find_module,
    replace_module,
    trace_layer_sites,
)
from repro.models.registry import build_model
from repro.nn.conv import Conv2d
from repro.nn.cp_conv import CPConv2d
from repro.nn.functional import conv2d_forward
from repro.nn.tt_conv import TTConv2d
from repro.nn.tucker_conv import TuckerConv2d
from repro.tensor.formats import (
    FACTORED_FORMATS,
    format_names,
    get_format,
    resolve_formats,
)

IMAGE_HW = (8, 8)


# ---------------------------------------------------------------------------
# Format registry
# ---------------------------------------------------------------------------

def test_registry_knows_all_factored_formats():
    assert set(FACTORED_FORMATS) == {"tucker", "cp", "tt"}
    assert set(FACTORED_FORMATS) <= set(format_names())
    for name in FACTORED_FORMATS:
        assert get_format(name).name == name


def test_resolve_formats_aliases_and_errors():
    assert resolve_formats(None) == ("tucker",)
    assert set(resolve_formats("all")) == set(format_names())
    assert set(resolve_formats("auto")) == set(format_names())
    assert resolve_formats("cp") == ("cp",)
    assert resolve_formats(("tt", "tt", "cp")) == ("tt", "cp")
    with pytest.raises(ValueError, match="bogus"):
        resolve_formats("bogus")


# ---------------------------------------------------------------------------
# Round-trip error bounds + factorize/reconstruct consistency
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt_name", FACTORED_FORMATS)
def test_full_rank_roundtrip_is_tight(fmt_name):
    """At (near-)full rank each format reconstructs a random kernel
    within a small relative error; Tucker/TT are exact."""
    rng = np.random.default_rng(7)
    c, n, k = 6, 8, 3
    weight = rng.standard_normal((n, c, k, k))
    fmt = get_format(fmt_name)
    if fmt_name == "tucker":
        ranks = (c, n)
    elif fmt_name == "tt":
        ranks = (n, min(n * c, k * k))
    else:  # CP needs rank >= matrix rank of the unfolding for exactness
        ranks = (c * k * k,)
    factors = fmt.factorize(weight, ranks)
    recon = fmt.reconstruct(factors).reshape(weight.shape[0], weight.shape[1], -1)
    rel = np.linalg.norm(recon - weight.reshape(n, c, -1)) / np.linalg.norm(weight)
    if fmt_name in ("tucker", "tt"):
        assert rel < 1e-10
    else:
        assert rel < 0.05  # ALS at full rank converges tightly, not exactly


@pytest.mark.parametrize("fmt_name", FACTORED_FORMATS)
def test_truncated_roundtrip_is_bounded_and_monotone(fmt_name):
    """Truncated ranks keep a bounded error that shrinks as rank grows."""
    rng = np.random.default_rng(3)
    c, n, k = 8, 12, 3
    weight = rng.standard_normal((n, c, k, k))
    fmt = get_format(fmt_name)
    if fmt_name == "tucker":
        rank_pairs = [(2, 3), (6, 9)]
    elif fmt_name == "tt":
        rank_pairs = [(3, 2), (9, 6)]
    else:
        rank_pairs = [(4,), (16,)]
    errors = []
    for ranks in rank_pairs:
        recon = fmt.reconstruct(fmt.factorize(weight, ranks))
        rel = np.linalg.norm(
            recon.reshape(n, c, -1) - weight.reshape(n, c, -1)
        ) / np.linalg.norm(weight)
        errors.append(rel)
        assert rel < 1.0
    assert errors[1] < errors[0]


@pytest.mark.parametrize("fmt_name", FACTORED_FORMATS)
def test_params_accounting_matches_modules(fmt_name):
    """``DecompFormat.n_params`` agrees with the actual module's
    factor-parameter count."""
    conv = Conv2d(8, 12, 3, padding=1, seed=0)
    fmt = get_format(fmt_name)
    if fmt_name == "tucker":
        mod = TuckerConv2d.from_conv(conv, rank_out=6, rank_in=4)
        ranks = (4, 6)
    elif fmt_name == "cp":
        mod = CPConv2d.from_conv(conv, rank=5)
        ranks = (5,)
    else:
        mod = TTConv2d.from_conv(conv, rank1=6, rank2=4)
        ranks = (mod.rank1, mod.rank2)
    assert fmt.n_params(8, 12, 3, 3, ranks) == mod.n_weight_params()


# ---------------------------------------------------------------------------
# export_weights <-> forward equivalence (the chain equals the
# reconstructed dense conv at machine precision)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 0)])
@pytest.mark.parametrize("kind", ["cp", "tt"])
def test_factored_forward_matches_reconstructed_dense(kind, stride, padding):
    rng = np.random.default_rng(11)
    conv = Conv2d(6, 10, 3, stride=stride, padding=padding, seed=2)
    if kind == "cp":
        mod = CPConv2d.from_conv(conv, rank=9)
    else:
        mod = TTConv2d.from_conv(conv, rank1=8, rank2=5)
    x = rng.standard_normal((2, 6, 9, 9))
    y = mod.forward(x)
    dense, _ = conv2d_forward(
        x, mod.to_conv_weight(), stride=stride, padding=padding,
    )
    if mod.bias is not None:
        dense = dense + mod.bias.data[None, :, None, None]
    np.testing.assert_allclose(y, dense, atol=1e-12)


@pytest.mark.parametrize("kind", ["cp", "tt"])
def test_export_weights_reproduce_forward(kind):
    """Running the exported (contiguous, dtype-cast) weights through
    the raw stage math reproduces ``forward`` exactly."""
    rng = np.random.default_rng(4)
    conv = Conv2d(5, 7, 3, padding=1, seed=3)
    mod = (
        CPConv2d.from_conv(conv, rank=6) if kind == "cp"
        else TTConv2d.from_conv(conv, rank1=6, rank2=4)
    )
    x = rng.standard_normal((1, 5, 6, 6))
    w = mod.export_weights()
    for arr in w.values():
        if arr is not None:
            assert arr.flags["C_CONTIGUOUS"]
    z1 = np.einsum("qc,bchw->bqhw", w["w_in"], x)
    from repro.nn.functional import depthwise_conv2d_forward

    z2 = depthwise_conv2d_forward(z1, w["dw"], stride=1, padding=1)
    if kind == "tt":
        b, _, oh, ow = z2.shape
        z2 = z2.reshape(b, mod.rank1, mod.rank2, oh, ow).sum(axis=2)
    y = np.einsum("nq,bqhw->bnhw", w["w_out"], z2)
    if w["bias"] is not None:
        y = y + w["bias"][None, :, None, None]
    np.testing.assert_allclose(y, mod.forward(x), atol=1e-12)


# ---------------------------------------------------------------------------
# Format-aware rank selection
# ---------------------------------------------------------------------------

def test_layer_format_candidates_cover_requested_formats():
    layer = LayerShape(name="l", c=64, n=128, h=16, w=16, r=3, s=3)
    _, candidates = layer_format_candidates(
        layer, A100, formats=("tucker", "cp", "tt"), rank_step=16,
    )
    present = {c.format for c in candidates}
    assert present == {"tucker", "cp", "tt"}
    for c in candidates:
        assert c.total_latency > 0 and c.flops > 0 and c.params > 0


def test_best_format_under_budget_picks_min_latency_plateau():
    layer = LayerShape(name="l", c=64, n=128, h=16, w=16, r=3, s=3)
    _, candidates = layer_format_candidates(
        layer, A100, formats=("tucker", "cp", "tt"), rank_step=16,
    )
    max_flops = max(c.flops for c in candidates)
    best = best_format_under_budget(candidates, max_flops)
    assert best is not None
    fastest = min(c.total_latency for c in candidates)
    assert best.total_latency <= fastest * 1.12 + 1e-18


def test_select_ranks_multiformat_decisions_are_well_formed():
    layers = [
        LayerShape(name="a", c=32, n=64, h=8, w=8, r=3, s=3),
        LayerShape(name="b", c=64, n=64, h=8, w=8, r=3, s=3),
    ]
    plan = select_ranks(
        layers, A100, budget=0.5, rank_step=8, formats="all",
    )
    for d in plan.decisions:
        if d.decomposed:
            assert d.format in FACTORED_FORMATS
            assert d.ranks is not None
            if d.format == "tucker":
                assert d.d1 is not None and d.d2 is not None
            else:
                assert d.d1 is None and d.d2 is None


def test_decompose_error_names_formats_and_sites():
    model = build_model("resnet_tiny", seed=0)
    with pytest.raises(ValueError) as exc:
        decompose_for_device(
            model, A100, IMAGE_HW, budget=0.5, rank_step=2,
            theta=0.999, formats="all",
        )
    msg = str(exc.value)
    assert "formats" in msg
    assert "theta_skip" in msg or "no_candidate" in msg


# ---------------------------------------------------------------------------
# Mixed-format plan -> compile -> run (machine precision, all backends)
# ---------------------------------------------------------------------------

def _mixed_format_model():
    """The tiny preset with one site per factored format."""
    model = build_model("resnet_tiny", seed=0)
    convs = [
        name for name, mod in model.named_modules()
        if isinstance(mod, Conv2d) and mod.kernel_size > 1
        and min(mod.in_channels, mod.out_channels) >= 4
    ]
    assert len(convs) >= 3, convs
    tucker_site, cp_site, tt_site = convs[0], convs[1], convs[2]
    mod = find_module(model, tucker_site)
    replace_module(model, tucker_site, TuckerConv2d.from_conv(
        mod, rank_out=max(2, mod.out_channels // 2),
        rank_in=max(2, mod.in_channels // 2),
    ))
    mod = find_module(model, cp_site)
    replace_module(model, cp_site, CPConv2d.from_conv(
        mod, rank=max(2, mod.out_channels // 2),
    ))
    mod = find_module(model, tt_site)
    replace_module(model, tt_site, TTConv2d.from_conv(
        mod, rank1=max(2, mod.out_channels // 2), rank2=3,
    ))
    return model.eval(), (tucker_site, cp_site, tt_site)


@pytest.fixture(scope="module")
def mixed_model():
    return _mixed_format_model()


@pytest.mark.parametrize("backend", list(backend_names()) + ["auto"])
def test_mixed_format_executable_matches_forward(mixed_model, backend):
    model, _ = mixed_model
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 3) + IMAGE_HW)
    ref = model.forward(x)
    sites = trace_layer_sites(model, IMAGE_HW, in_channels=3)
    plan = plan_model(
        model, A100, IMAGE_HW, core_backend=backend, sites=sites,
    )
    exe = compile_plan(
        plan, model, A100, image_hw=IMAGE_HW, max_batch=2, sites=sites,
    )
    y = exe.run(x)
    np.testing.assert_allclose(y, ref, atol=1e-10, rtol=1e-10)
    np.testing.assert_array_equal(exe.run(x), y)


def test_mixed_format_plan_kinds_and_compiled_sites(mixed_model):
    model, (tucker_site, cp_site, tt_site) = mixed_model
    sites = trace_layer_sites(model, IMAGE_HW, in_channels=3)
    plan = plan_model(model, A100, IMAGE_HW, sites=sites)
    kinds = {k.layer: k.kind for k in plan.kernels}
    assert kinds[f"{tucker_site}.core"] == "core"
    assert kinds[f"{cp_site}.core"] == "dwcore"
    assert kinds[f"{tt_site}.core"] == "dwcore"
    # A fixed per-stage backend binds the per-stage compiled forms
    # (under "auto" the fused backend may win and replace them with
    # CompiledFusedSite — covered in test_fused.py).
    plan = plan_model(
        model, A100, IMAGE_HW, core_backend="tdc-model", sites=sites,
    )
    exe = compile_plan(
        plan, model, A100, image_hw=IMAGE_HW, max_batch=1, sites=sites,
    )
    by_name = {s.site_name: s for s in exe.sites()}
    assert isinstance(by_name[cp_site], CompiledCPConv2d)
    assert isinstance(by_name[tt_site], CompiledTTConv2d)


def test_plan_model_rejects_disallowed_format(mixed_model):
    model, (_, cp_site, _) = mixed_model
    with pytest.raises(ValueError, match=cp_site.replace(".", r"\.")):
        plan_model(model, A100, IMAGE_HW, formats=("tucker", "tt"))


def test_decompose_for_device_all_formats_compiles_and_matches():
    """The full pipeline: auto format selection -> mixed model ->
    plan -> compile -> machine-precision execution."""
    model = build_model("resnet_tiny", seed=0)
    model, plan, format_map = decompose_for_device(
        model, A100, IMAGE_HW, budget=0.5, rank_step=2, formats="all",
    )
    assert format_map
    for name, (fmt, ranks) in format_map.items():
        assert fmt in FACTORED_FORMATS
        assert all(r >= 1 for r in ranks)
    model.eval()
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, 3) + IMAGE_HW)
    ref = model.forward(x)
    sites = trace_layer_sites(model, IMAGE_HW, in_channels=3)
    exec_plan = plan_model(model, A100, IMAGE_HW, sites=sites)
    exe = compile_plan(
        exec_plan, model, A100, image_hw=IMAGE_HW, max_batch=2, sites=sites,
    )
    np.testing.assert_allclose(exe.run(x), ref, atol=1e-10, rtol=1e-10)
