"""Additional property-based tests on core invariants.

Wide-net hypothesis tests over the mathematical invariants the whole
system rests on: decomposition/reconstruction consistency, latency
model monotonicities, FLOPs conservation, and plan feasibility.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codesign.flops import conv_flops, tucker_flops, tucker_params
from repro.gpusim.device import A100
from repro.kernels.base import ConvShape, reference_conv
from repro.kernels.tdc_direct import TDCDirectKernel, Tiling, is_feasible
from repro.nn.tucker_conv import TuckerConv2d
from repro.tensor.tucker import tucker2_project
from repro.tensor.unfold import relative_error


@st.composite
def kernels4d(draw):
    n = draw(st.integers(2, 8))
    c = draw(st.integers(2, 8))
    k = draw(st.sampled_from([1, 3]))
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).standard_normal((n, c, k, k))


class TestProjectionInvariants:
    @given(kernels4d(), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_projection_error_bounded_by_norm(self, k, d2, d1):
        p = tucker2_project(k, d2, d1)
        # ||K - proj(K)|| <= ||K|| for an orthogonal-subspace projection.
        assert np.linalg.norm(k - p) <= np.linalg.norm(k) + 1e-9

    @given(kernels4d())
    @settings(max_examples=20, deadline=None)
    def test_full_rank_projection_identity(self, k):
        n, c = k.shape[0], k.shape[1]
        np.testing.assert_allclose(tucker2_project(k, n, c), k, atol=1e-8)

    @given(kernels4d(), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_projection_linear_under_scaling(self, k, d2, d1):
        """proj(a*K) == a*proj(K) — truncated HOSVD is scale-covariant."""
        p1 = tucker2_project(2.5 * k, d2, d1)
        p2 = 2.5 * tucker2_project(k, d2, d1)
        np.testing.assert_allclose(p1, p2, atol=1e-7)


class TestTuckerLayerInvariants:
    @given(st.integers(2, 6), st.integers(2, 6), st.integers(1, 4),
           st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_layer_matches_reconstructed_dense(self, c, n, d1, d2, seed):
        assume(d1 <= c and d2 <= n)
        rng = np.random.default_rng(seed)
        layer = TuckerConv2d(c, n, 3, rank_in=d1, rank_out=d2, padding=1,
                             bias=False, seed=seed)
        x = rng.standard_normal((1, c, 6, 6))
        w = layer.to_conv_weight()
        expected = reference_conv(x[0], w)
        np.testing.assert_allclose(layer.forward(x)[0], expected, atol=1e-8)

    @given(st.integers(4, 32), st.integers(4, 32))
    @settings(max_examples=20, deadline=None)
    def test_params_monotone_in_ranks(self, c, n):
        small = tucker_params(c, n, d1=1, d2=1)
        large = tucker_params(c, n, d1=min(4, c), d2=min(4, n))
        assert large >= small


class TestFlopsInvariants:
    @given(st.integers(8, 64), st.integers(8, 64), st.integers(4, 28))
    @settings(max_examples=25, deadline=None)
    def test_tucker_flops_below_dense_at_quarter_rank(self, c, n, hw):
        d1, d2 = max(1, c // 4), max(1, n // 4)
        assert tucker_flops(c, n, hw, hw, d1, d2) < conv_flops(c, n, hw, hw)

    @given(st.integers(2, 64), st.integers(2, 64), st.integers(4, 28))
    @settings(max_examples=25, deadline=None)
    def test_flops_positive(self, c, n, hw):
        assert tucker_flops(c, n, hw, hw, 1, 1) > 0


class TestLatencyModelInvariants:
    @given(st.sampled_from([1, 2, 4, 7]), st.sampled_from([1, 2, 4, 7]),
           st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=30, deadline=None)
    def test_latency_positive_for_feasible_tilings(self, th, tw, tc):
        shape = ConvShape(32, 32, 14, 14)
        t = Tiling(th, tw, tc)
        assume(is_feasible(t, shape, A100))
        lat = TDCDirectKernel(t).latency(shape, A100)
        assert lat > 0 and np.isfinite(lat)

    @given(st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_latency_scales_with_spatial_extent(self, mult):
        t = Tiling(4, 4, 8)
        small = TDCDirectKernel(t).latency(ConvShape(32, 32, 14, 14), A100)
        big = TDCDirectKernel(t).latency(
            ConvShape(32, 32, 14 * (mult + 1), 14 * (mult + 1)), A100
        )
        assert big >= small

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_functional_run_matches_reference_randomized(self, seed):
        rng = np.random.default_rng(seed)
        c = int(rng.integers(1, 8))
        n = int(rng.integers(1, 8))
        hw = int(rng.integers(3, 10))
        x = rng.standard_normal((c, hw, hw))
        w = rng.standard_normal((n, c, 3, 3))
        t = Tiling(int(rng.integers(1, 5)), int(rng.integers(1, 5)),
                   int(rng.integers(1, 5)))
        y = TDCDirectKernel(t).run(x, w)
        np.testing.assert_allclose(y, reference_conv(x, w), atol=1e-9)
