"""Tests for Tucker decomposition (HOSVD/HOOI/Tucker-2 projection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.tucker import (
    TuckerTensor,
    hooi,
    hosvd,
    partial_tucker,
    tucker2_conv_kernel,
    tucker2_params,
    tucker2_project,
    tucker2_relative_error,
)
from repro.tensor.unfold import mode_dot, relative_error


def low_tucker_rank_kernel(rng, n=12, c=10, r=3, s=3, d2=4, d1=5):
    """Build a kernel with exact Tucker-2 ranks (d2, d1)."""
    core = rng.standard_normal((d2, d1, r, s))
    u2 = rng.standard_normal((n, d2))
    u1 = rng.standard_normal((c, d1))
    return mode_dot(mode_dot(core, u2, 0), u1, 1)


class TestPartialTucker:
    def test_exact_recovery_of_low_rank(self, rng):
        k = low_tucker_rank_kernel(rng)
        t = partial_tucker(k, modes=(0, 1), ranks=(4, 5))
        assert relative_error(t.to_full(), k) < 1e-10

    def test_full_rank_is_lossless(self, rng):
        k = rng.standard_normal((6, 5, 3, 3))
        t = partial_tucker(k, modes=(0, 1), ranks=(6, 5))
        assert relative_error(t.to_full(), k) < 1e-12

    def test_ranks_property(self, rng):
        k = rng.standard_normal((8, 6, 3, 3))
        t = partial_tucker(k, modes=(0, 1), ranks=(4, 3))
        assert t.ranks == (4, 3)
        assert t.core.shape == (4, 3, 3, 3)
        assert t.full_shape == (8, 6, 3, 3)

    def test_factors_orthonormal(self, rng):
        k = rng.standard_normal((8, 6, 3, 3))
        t = partial_tucker(k, modes=(0, 1), ranks=(4, 3))
        for f in t.factors:
            np.testing.assert_allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-10)

    def test_hooi_improves_or_matches_hosvd(self, rng):
        k = rng.standard_normal((10, 8, 3, 3))
        err0 = relative_error(
            partial_tucker(k, (0, 1), (4, 4), n_iter=0).to_full(), k
        )
        err5 = relative_error(
            partial_tucker(k, (0, 1), (4, 4), n_iter=5).to_full(), k
        )
        assert err5 <= err0 + 1e-12

    def test_rank_clipping(self, rng):
        k = rng.standard_normal((4, 3, 2, 2))
        t = partial_tucker(k, modes=(0, 1), ranks=(100, 100))
        assert t.ranks == (4, 3)

    def test_duplicate_modes_rejected(self, rng):
        with pytest.raises(ValueError):
            partial_tucker(rng.standard_normal((3, 3, 3)), (0, 0), (2, 2))

    def test_rank_mode_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            partial_tucker(rng.standard_normal((3, 3, 3)), (0, 1), (2,))

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_error_monotone_in_rank(self, d2, d1):
        rng = np.random.default_rng(42)
        k = rng.standard_normal((6, 5, 3, 3))
        err = relative_error(
            partial_tucker(k, (0, 1), (d2, d1)).to_full(), k
        )
        err_more = relative_error(
            partial_tucker(k, (0, 1), (min(6, d2 + 1), min(5, d1 + 1))).to_full(), k
        )
        assert err_more <= err + 1e-9


class TestFullTucker:
    def test_hosvd_requires_all_ranks(self, rng):
        with pytest.raises(ValueError):
            hosvd(rng.standard_normal((3, 4, 5)), [2, 2])

    def test_hosvd_full_rank_lossless(self, rng):
        t = rng.standard_normal((4, 5, 3))
        dec = hosvd(t, [4, 5, 3])
        assert relative_error(dec.to_full(), t) < 1e-12

    def test_hooi_converges(self, rng):
        t = rng.standard_normal((6, 6, 6))
        dec = hooi(t, [3, 3, 3], n_iter=30)
        assert relative_error(dec.to_full(), t) < 1.0

    def test_n_params(self, rng):
        dec = hosvd(rng.standard_normal((4, 5, 6)), [2, 2, 2])
        assert dec.n_params() == 2 * 2 * 2 + 4 * 2 + 5 * 2 + 6 * 2


class TestTucker2Projection:
    def test_projection_idempotent(self, rng):
        k = rng.standard_normal((8, 6, 3, 3))
        p1 = tucker2_project(k, 4, 3)
        p2 = tucker2_project(p1, 4, 3)
        np.testing.assert_allclose(p1, p2, atol=1e-10)

    def test_projection_non_expansive(self, rng):
        k = rng.standard_normal((8, 6, 3, 3))
        p = tucker2_project(k, 4, 3)
        assert np.linalg.norm(p.ravel()) <= np.linalg.norm(k.ravel()) + 1e-10

    def test_projection_decreases_distance_to_set(self, rng):
        """proj(K) is the closest rank-constrained point for the HOSVD
        per-mode truncation (within tolerance of true optimum)."""
        k = low_tucker_rank_kernel(rng) + 0.01 * rng.standard_normal((12, 10, 3, 3))
        p = tucker2_project(k, 4, 5)
        assert relative_error(p, k) < 0.05

    def test_projection_of_in_set_point_is_identity(self, rng):
        k = low_tucker_rank_kernel(rng)
        np.testing.assert_allclose(tucker2_project(k, 4, 5), k, atol=1e-8)

    def test_projection_requires_4d(self, rng):
        with pytest.raises(ValueError):
            tucker2_project(rng.standard_normal((3, 3, 3)), 2, 2)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_projection_properties_random(self, seed):
        rng = np.random.default_rng(seed)
        k = rng.standard_normal((5, 4, 2, 2))
        p = tucker2_project(k, 3, 2)
        # Idempotence and non-expansiveness on arbitrary inputs.
        np.testing.assert_allclose(tucker2_project(p, 3, 2), p, atol=1e-8)
        assert np.linalg.norm(p) <= np.linalg.norm(k) + 1e-10


class TestConvKernelDecomposition:
    def test_factor_shapes(self, rng):
        k = rng.standard_normal((12, 10, 3, 3))
        u_out, core, u_in = tucker2_conv_kernel(k, rank_out=5, rank_in=4)
        assert u_out.shape == (12, 5)
        assert core.shape == (5, 4, 3, 3)
        assert u_in.shape == (10, 4)

    def test_reconstruction_error_reported(self, rng):
        k = low_tucker_rank_kernel(rng)
        assert tucker2_relative_error(k, 4, 5) < 1e-8
        assert tucker2_relative_error(k, 2, 2) > 1e-3

    def test_requires_4d(self, rng):
        with pytest.raises(ValueError):
            tucker2_conv_kernel(rng.standard_normal((3, 3, 3)), 2, 2)

    def test_params_formula(self):
        # Eq. 5 denominator: C*D1 + R*S*D1*D2 + N*D2
        assert tucker2_params(n=64, c=32, r=3, s=3, rank_out=8, rank_in=4) == (
            32 * 4 + 9 * 4 * 8 + 64 * 8
        )


class TestTuckerTensorValidation:
    def test_mismatched_factor_raises(self, rng):
        core = rng.standard_normal((2, 3))
        with pytest.raises(ValueError):
            TuckerTensor(core=core, factors=[rng.standard_normal((5, 4))], modes=(0,))

    def test_factor_mode_length_mismatch(self, rng):
        core = rng.standard_normal((2, 3))
        with pytest.raises(ValueError):
            TuckerTensor(core=core, factors=[rng.standard_normal((5, 2))], modes=(0, 1))
