"""Tests for the CUDA source generator and layout conversions."""

import numpy as np
import pytest

from repro.kernels.base import ConvShape
from repro.kernels.codegen import (
    convert_kernel_from_crsn,
    convert_kernel_to_crsn,
    generate_tdc_kernel_source,
    kernel_constants,
)
from repro.kernels.tdc_direct import Tiling, smem_bytes

SHAPE = ConvShape(64, 32, 56, 56)
TILING = Tiling(8, 8, 16)


class TestSourceGeneration:
    def test_contains_all_constants(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        for define, value in kernel_constants(SHAPE, TILING).items():
            assert f"#define {define} {value}" in src

    def test_structure_markers(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert "__global__ void tdc_core_conv" in src
        assert "__shared__ float input_tile" in src
        assert src.count("__syncthreads()") == 1  # the scheme's single sync
        assert "atomicAdd" in src

    def test_crsn_indexing_emitted(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        # CRSN layout: kernel[(gc * R * S + rs) * N + n]
        assert "kernel[(gc * R * S + rs) * N + n]" in src

    def test_launch_config_comment(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert f"dim3({7 * 7 * 4})" in src      # blocks
        assert f"dim3({SHAPE.n})" in src        # threads = N

    def test_smem_matches_simulator_accounting(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert f"{smem_bytes(TILING, SHAPE)} bytes" in src

    def test_tiling_clipped_to_shape(self):
        small = ConvShape(4, 8, 5, 5)
        consts = kernel_constants(small, Tiling(64, 64, 64))
        assert consts["TH"] == 5 and consts["TC"] == 4

    def test_balanced_braces(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert src.count("{") == src.count("}")

    def test_distinct_shapes_distinct_sources(self):
        s1 = generate_tdc_kernel_source(SHAPE, TILING)
        s2 = generate_tdc_kernel_source(ConvShape(32, 32, 14, 14), TILING)
        assert s1 != s2


class TestLayoutConversion:
    def test_roundtrip(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        np.testing.assert_array_equal(
            convert_kernel_from_crsn(convert_kernel_to_crsn(w)), w
        )

    def test_crsn_axis_order(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        crsn = convert_kernel_to_crsn(w)
        assert crsn.shape == (5, 3, 3, 6)
        assert crsn[2, 1, 0, 4] == w[4, 2, 1, 0]

    def test_contiguous_output(self, rng):
        crsn = convert_kernel_to_crsn(rng.standard_normal((4, 3, 3, 3)))
        assert crsn.flags["C_CONTIGUOUS"]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            convert_kernel_to_crsn(rng.standard_normal((4, 3, 3)))
        with pytest.raises(ValueError):
            convert_kernel_from_crsn(rng.standard_normal((4, 3)))


class TestFusedSourceGeneration:
    """The fused whole-chain variant of the generator."""

    def spec(self, fmt="tucker", relu=False):
        from repro.kernels.codegen import FusedChainSpec

        collapse = 2 if fmt == "tt" else None
        mid_in = 6 if fmt != "tucker" else 12
        mid_out = 6 if fmt != "tucker" else 16
        return FusedChainSpec(
            fmt=fmt, c=32, n=64, mid_in=mid_in, mid_out=mid_out,
            h=16, w=16, r=3, s=3, collapse_to=collapse, relu=relu,
        )

    def tiling(self, spec):
        from repro.gpusim.device import A100
        from repro.kernels.fused import select_fused_tiling

        return select_fused_tiling(spec.core_shape, A100)

    @pytest.mark.parametrize("fmt", ["tucker", "cp", "tt"])
    def test_contains_all_constants(self, fmt):
        from repro.kernels.codegen import (
            fused_kernel_constants,
            generate_fused_kernel_source,
        )

        spec = self.spec(fmt)
        t = self.tiling(spec)
        src = generate_fused_kernel_source(spec, t)
        for define, value in fused_kernel_constants(spec, t).items():
            assert f"#define {define} {value}" in src

    @pytest.mark.parametrize("fmt", ["tucker", "cp", "tt"])
    def test_smem_matches_simulator_accounting(self, fmt):
        from repro.gpusim.device import A100
        from repro.kernels.codegen import generate_fused_kernel_source
        from repro.kernels.fused import fused_core_launch, fused_smem_bytes

        spec = self.spec(fmt)
        t = self.tiling(spec)
        src = generate_fused_kernel_source(spec, t)
        smem = fused_smem_bytes(spec.core_shape, t)
        assert f"{smem} bytes" in src
        assert fused_core_launch(spec.core_shape, A100, t) \
            .smem_per_block == smem

    def test_two_syncs_per_stage(self):
        from repro.kernels.codegen import generate_fused_kernel_source

        spec = self.spec("tucker")
        src = generate_fused_kernel_source(spec, self.tiling(spec))
        # One sync after pw1 staging, one after the core accumulate;
        # the epilogue needs none (acc is read-only by then).
        assert src.count("__syncthreads()") == 2

    def test_no_intermediate_global_traffic(self):
        from repro.kernels.codegen import generate_fused_kernel_source

        spec = self.spec("tucker")
        src = generate_fused_kernel_source(spec, self.tiling(spec))
        assert "atomicAdd" not in src          # single-pass output write
        body = src.split("__global__")[1]
        # Intermediates live in shared memory only.
        assert "__shared__ float z1_tile" in body
        assert "__shared__ float acc" in body
        assert body.count("output[") == 1      # exactly one global store

    def test_epilogue_folds_bias_and_relu(self):
        from repro.kernels.codegen import generate_fused_kernel_source

        spec = self.spec("cp", relu=True)
        src = generate_fused_kernel_source(spec, self.tiling(spec))
        assert "float o = bias[n];" in src
        assert "fused ReLU" in src
        plain = generate_fused_kernel_source(
            self.spec("cp", relu=False), self.tiling(spec)
        )
        assert "fused ReLU" not in plain

    def test_tt_emits_group_sum(self):
        from repro.kernels.codegen import generate_fused_kernel_source

        spec = self.spec("tt")
        src = generate_fused_kernel_source(spec, self.tiling(spec))
        assert "TT group-sum" in src
        assert f"#define DRAIN {spec.collapse_to}" in src

    def test_balanced_braces(self):
        from repro.kernels.codegen import generate_fused_kernel_source

        for fmt in ("tucker", "cp", "tt"):
            spec = self.spec(fmt)
            src = generate_fused_kernel_source(spec, self.tiling(spec))
            assert src.count("{") == src.count("}")

    def test_spec_validation(self):
        from repro.kernels.codegen import FusedChainSpec

        with pytest.raises(ValueError, match="unknown fused format"):
            FusedChainSpec(fmt="svd", c=4, n=4, mid_in=2, mid_out=2,
                           h=4, w=4, r=3, s=3)
        with pytest.raises(ValueError, match="depthwise"):
            FusedChainSpec(fmt="cp", c=4, n=4, mid_in=2, mid_out=3,
                           h=4, w=4, r=3, s=3)
        with pytest.raises(ValueError, match="collapse_to"):
            FusedChainSpec(fmt="tucker", c=4, n=4, mid_in=2, mid_out=3,
                           h=4, w=4, r=3, s=3, collapse_to=2)
        with pytest.raises(ValueError, match="dividing"):
            FusedChainSpec(fmt="tt", c=4, n=4, mid_in=5, mid_out=5,
                           h=4, w=4, r=3, s=3, collapse_to=2)
