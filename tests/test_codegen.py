"""Tests for the CUDA source generator and layout conversions."""

import numpy as np
import pytest

from repro.kernels.base import ConvShape
from repro.kernels.codegen import (
    convert_kernel_from_crsn,
    convert_kernel_to_crsn,
    generate_tdc_kernel_source,
    kernel_constants,
)
from repro.kernels.tdc_direct import Tiling, smem_bytes

SHAPE = ConvShape(64, 32, 56, 56)
TILING = Tiling(8, 8, 16)


class TestSourceGeneration:
    def test_contains_all_constants(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        for define, value in kernel_constants(SHAPE, TILING).items():
            assert f"#define {define} {value}" in src

    def test_structure_markers(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert "__global__ void tdc_core_conv" in src
        assert "__shared__ float input_tile" in src
        assert src.count("__syncthreads()") == 1  # the scheme's single sync
        assert "atomicAdd" in src

    def test_crsn_indexing_emitted(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        # CRSN layout: kernel[(gc * R * S + rs) * N + n]
        assert "kernel[(gc * R * S + rs) * N + n]" in src

    def test_launch_config_comment(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert f"dim3({7 * 7 * 4})" in src      # blocks
        assert f"dim3({SHAPE.n})" in src        # threads = N

    def test_smem_matches_simulator_accounting(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert f"{smem_bytes(TILING, SHAPE)} bytes" in src

    def test_tiling_clipped_to_shape(self):
        small = ConvShape(4, 8, 5, 5)
        consts = kernel_constants(small, Tiling(64, 64, 64))
        assert consts["TH"] == 5 and consts["TC"] == 4

    def test_balanced_braces(self):
        src = generate_tdc_kernel_source(SHAPE, TILING)
        assert src.count("{") == src.count("}")

    def test_distinct_shapes_distinct_sources(self):
        s1 = generate_tdc_kernel_source(SHAPE, TILING)
        s2 = generate_tdc_kernel_source(ConvShape(32, 32, 14, 14), TILING)
        assert s1 != s2


class TestLayoutConversion:
    def test_roundtrip(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        np.testing.assert_array_equal(
            convert_kernel_from_crsn(convert_kernel_to_crsn(w)), w
        )

    def test_crsn_axis_order(self, rng):
        w = rng.standard_normal((6, 5, 3, 3))
        crsn = convert_kernel_to_crsn(w)
        assert crsn.shape == (5, 3, 3, 6)
        assert crsn[2, 1, 0, 4] == w[4, 2, 1, 0]

    def test_contiguous_output(self, rng):
        crsn = convert_kernel_to_crsn(rng.standard_normal((4, 3, 3, 3)))
        assert crsn.flags["C_CONTIGUOUS"]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            convert_kernel_to_crsn(rng.standard_normal((4, 3, 3)))
        with pytest.raises(ValueError):
            convert_kernel_from_crsn(rng.standard_normal((4, 3)))
