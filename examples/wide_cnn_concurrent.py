"""Wide-CNN extension: ranks for concurrent convolutions.

The paper's stated future work (Sec. 8) is extending TDC to wide CNNs
(GoogleNet/NasNet) whose modules run several convolutions
*concurrently*.  This example exercises the repository's
implementation of that extension: joint rank selection over an
Inception-style module that minimizes the *group* latency (critical
branch + aggregate-throughput bounds) under one shared FLOPs budget.

Usage:
    python examples/wide_cnn_concurrent.py [budget]
"""

import sys

from repro.codesign import (
    inception_group,
    select_ranks_concurrent,
)
from repro.codesign.concurrent import concurrent_latency
from repro.gpusim import A100
from repro.utils.tables import Table


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    # An Inception-v1-style mixed module: three concurrent 3x3 branches
    # at 14x14 (the 1x1 branches are not Tucker candidates).
    group = inception_group(
        "inception4a", in_channels=192, h=14, w=14,
        branch_out=[96, 128, 64], kernel_sizes=[3, 3, 3],
    )
    print(f"=== Concurrent rank selection, budget {budget:.0%} "
          f"(simulated {A100.name}) ===")
    print(f"module: {group.name}, {len(group.branches)} concurrent 3x3 "
          f"branches, {group.total_flops() / 1e6:.0f} MFLOPs dense\n")

    decision = select_ranks_concurrent(group, A100, budget=budget,
                                       rank_step=32)

    table = Table(
        ["branch", "shape (C,N)", "ranks (D1,D2)", "branch latency (us)"],
        title="Joint rank allocation:",
    )
    for branch, (d1, d2), lat in zip(
        group.branches, decision.ranks, decision.branch_latencies
    ):
        table.add_row([
            branch.name, f"({branch.c},{branch.n})", f"({d1},{d2})",
            f"{lat * 1e6:.1f}",
        ])
    print(table.render())
    print(f"\ngroup latency (concurrent streams): "
          f"{decision.group_latency * 1e6:.1f} us")
    print(f"sequential sum would be:            "
          f"{sum(decision.branch_latencies) * 1e6:.1f} us")
    print(f"achieved FLOPs reduction:           "
          f"{decision.achieved_reduction:.1%}")

    # Contrast: naive per-branch budgets (no concurrency awareness).
    naive_lats = []
    naive_flops = []
    for branch in group.branches:
        solo = inception_group(
            f"{branch.name}.solo", branch.c, branch.h, branch.w,
            [branch.n], [branch.r],
        )
        d = select_ranks_concurrent(solo, A100, budget=budget, rank_step=32)
        naive_lats.append(d.branch_latencies[0])
        naive_flops.append(d.total_tucker_flops)
    naive_group = concurrent_latency(naive_lats, naive_flops, A100)
    print(f"\nper-branch (concurrency-blind) plan:  "
          f"{naive_group * 1e6:.1f} us group latency")
    print(f"joint plan advantage:                 "
          f"{naive_group / decision.group_latency:.2f}x")


if __name__ == "__main__":
    main()
