"""Full-scale co-design study: ResNet-18 at ImageNet resolution.

No training here — this is the latency side of the paper: run
Algorithm 1 on the real ResNet-18 layer inventory (224x224 input)
against a simulated device, inspect the chosen ranks and the θ-rule
decisions, and estimate the five end-to-end configurations of Fig. 8.

Usage:
    python examples/resnet18_codesign.py [a100|2080ti] [budget]
    python examples/resnet18_codesign.py a100 0.65
"""

import sys

from repro.codesign import layer_shapes_from_spec, select_ranks
from repro.gpusim import get_device
from repro.inference import estimate_e2e
from repro.models import get_model_spec
from repro.utils.tables import Table


def main() -> None:
    device = get_device(sys.argv[1] if len(sys.argv) > 1 else "a100")
    budget = float(sys.argv[2]) if len(sys.argv) > 2 else 0.65

    spec = get_model_spec("resnet18")
    print(f"=== ResNet-18 co-design on simulated {device.name} "
          f"(budget {budget:.0%}) ===")
    print(f"model: {spec.total_flops() / 1e9:.2f} GFLOPs, "
          f"{spec.total_params() / 1e6:.1f}M params, "
          f"{len(spec.decomposable_convs())} decomposable convs")

    layers = layer_shapes_from_spec(spec)
    plan = select_ranks(layers, device, budget=budget)

    table = Table(
        ["layer", "shape (C,N,HxW)", "ranks (D1,D2)", "t1 (us)", "t2 (us)",
         "decision"],
        title="\nAlgorithm 1 rank selection:",
    )
    for d in plan.decisions:
        l = d.layer
        table.add_row([
            l.name,
            f"({l.c},{l.n},{l.h}x{l.w})",
            f"({d.d1},{d.d2})" if d.decomposed else "-",
            f"{d.tucker_latency * 1e6:.1f}",
            f"{d.original_latency * 1e6:.1f}",
            d.reason,
        ])
    print(table.render())
    print(f"\nachieved FLOPs reduction (decomposable convs): "
          f"{plan.achieved_reduction:.1%}")
    print(f"layerwise speedup over dense cuDNN: {plan.speedup():.2f}x")

    print("\nEnd-to-end estimate (Fig. 8/9 bars):")
    res = estimate_e2e(spec, device, budget=budget, rank_plan=plan)
    for name, ms in res.as_milliseconds().items():
        print(f"  {name:<18} {ms:8.3f} ms")
    print(f"  TDC-ORACLE speedups: {res.speedup_over_original():.2f}x vs "
          f"original, {res.speedup_over_tucker_cudnn():.2f}x vs TK-cuDNN, "
          f"{res.speedup_over_tucker_tvm():.2f}x vs TK-TVM")


if __name__ == "__main__":
    main()
