"""Quickstart: compress a small CNN with the full TDC pipeline.

Runs the complete co-design loop from Fig. 1 of the paper on a slim
ResNet-20 and a synthetic CIFAR-like dataset (everything fits in a
couple of minutes of CPU time):

1. pretrain the dense model,
2. hardware-aware rank selection against the simulated A100
   (performance table + FLOPs budget + θ-threshold rule),
3. ADMM-constrained training toward the selected ranks,
4. hard Tucker decomposition of every selected conv,
5. fine-tuning of the Tucker-format model.

Usage:
    python examples/quickstart.py
"""

from repro.codesign import run_tdc_pipeline
from repro.compression import evaluate, train_model
from repro.data import make_cifar_like
from repro.gpusim import A100
from repro.models import build_model


def main() -> None:
    print("=== TDC quickstart (simulated A100) ===")

    train_data, test_data = make_cifar_like(
        n_train=256, n_test=128, image_size=12, num_classes=6, seed=0
    )

    print("\n[1/3] Pretraining dense slim ResNet-20 ...")
    model = build_model("resnet20_slim", num_classes=6, seed=1)
    history = train_model(
        model, train_data, test_data=test_data, epochs=5, batch_size=32,
        seed=0,
    )
    print(f"      baseline top-1: {history.final_test_accuracy:.1%}")

    print("\n[2/3] Running the TDC pipeline (budget = 60% FLOPs off) ...")
    result = run_tdc_pipeline(
        model, train_data, test_data,
        device=A100, budget=0.6, rank_step=2,
        admm_epochs=3, finetune_epochs=2, batch_size=32, rho=0.5, seed=0,
    )

    print("\n[3/3] Results")
    print(f"      baseline accuracy:    {result.baseline_accuracy:.1%}")
    print(f"      compressed accuracy:  {result.compressed_accuracy:.1%}")
    print(f"      FLOPs reduction:      {result.achieved_flops_reduction:.1%}")
    print(f"      layerwise speedup:    {result.layerwise_speedup:.2f}x "
          f"(simulated {result.plan.device_name})")
    print("\n      per-layer ranks (D2, D1):")
    for d in result.plan.decisions:
        if d.decomposed:
            print(f"        {d.layer.name:<24} ({d.d2}, {d.d1})   "
                  f"t1={d.tucker_latency * 1e6:7.1f}us  "
                  f"t2={d.original_latency * 1e6:7.1f}us")
        else:
            print(f"        {d.layer.name:<24} kept dense ({d.reason})")


if __name__ == "__main__":
    main()
