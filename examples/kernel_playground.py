"""Kernel playground: compare convolution schemes on one core shape.

For a Tucker-core convolution shape of your choice this example:

- runs all six schemes functionally and verifies they agree,
- simulates their latency on both devices,
- shows the analytical model's tiling choice vs the oracle's,
- emits the specialized CUDA source the TDC code generator produces.

Usage:
    python examples/kernel_playground.py [C N H W]
    python examples/kernel_playground.py 64 32 56 56
"""

import sys

import numpy as np

from repro.gpusim import A100, RTX2080TI
from repro.kernels import (
    ConvShape,
    CuDNNFFTKernel,
    CuDNNGemmKernel,
    CuDNNWinogradKernel,
    TDCDirectKernel,
    TVMDirectKernel,
    generate_tdc_kernel_source,
    reference_conv,
)
from repro.perfmodel import select_tiling_model, select_tiling_oracle
from repro.utils.tables import Table


def main() -> None:
    if len(sys.argv) == 5:
        c, n, h, w = (int(a) for a in sys.argv[1:])
    else:
        c, n, h, w = 64, 32, 56, 56
    shape = ConvShape(c=c, n=n, h=h, w=w)
    print(f"=== Core convolution {shape} (3x3 filter, batch 1) ===")

    # Functional agreement on a small random problem.
    rng = np.random.default_rng(0)
    cs, ns, hs, ws = min(c, 16), min(n, 16), min(h, 14), min(w, 14)
    x = rng.standard_normal((cs, hs, ws))
    weight = rng.standard_normal((ns, cs, 3, 3))
    ref = reference_conv(x, weight)
    small = ConvShape(cs, ns, hs, ws)
    oracle_small = select_tiling_oracle(small, A100)
    schemes = {
        "TDC": TDCDirectKernel(oracle_small.tiling),
        "TVM": TVMDirectKernel.tuned(small, A100),
        "cuDNN-GEMM": CuDNNGemmKernel(),
        "cuDNN-WINOGRAD": CuDNNWinogradKernel(),
        "cuDNN-FFT": CuDNNFFTKernel(),
    }
    print("\nFunctional check (max abs error vs reference conv):")
    for name, kernel in schemes.items():
        err = float(np.abs(kernel.run(x, weight) - ref).max())
        print(f"  {name:<16} {err:.2e}")

    # Simulated latency on both devices.
    table = Table(
        ["device", "TDC-ORACLE", "TDC-MODEL", "TVM", "GEMM", "WINO", "FFT"],
        title="\nSimulated latency (us):",
    )
    for device in (A100, RTX2080TI):
        oracle = select_tiling_oracle(shape, device)
        model = select_tiling_model(shape, device)
        table.add_row([
            device.name,
            f"{oracle.simulated_latency * 1e6:.1f}",
            f"{model.simulated_latency * 1e6:.1f}",
            f"{TVMDirectKernel.tuned(shape, device).latency(shape, device) * 1e6:.1f}",
            f"{CuDNNGemmKernel().latency(shape, device) * 1e6:.1f}",
            f"{CuDNNWinogradKernel().latency(shape, device) * 1e6:.1f}",
            f"{CuDNNFFTKernel().latency(shape, device) * 1e6:.1f}",
        ])
    print(table.render())

    oracle = select_tiling_oracle(shape, A100)
    model = select_tiling_model(shape, A100)
    print(f"\nA100 tiling choices: oracle {oracle.tiling}, model {model.tiling}")

    print("\nGenerated CUDA for the oracle tiling (first 40 lines):")
    src = generate_tdc_kernel_source(shape, oracle.tiling)
    print("\n".join(src.splitlines()[:40]))
    print("  ... (truncated)")


if __name__ == "__main__":
    main()
