"""Compare compression algorithms at a matched FLOPs budget (Table 3).

Pretrains one slim model on synthetic data, then lets every comparator
(FPGM pruning, TRP, CP, TT, standard TKD, MUSCO) and TDC's ADMM
pipeline compress it at the same budget, reporting accuracy and
achieved reduction side by side.

Usage:
    python examples/compression_methods_study.py [budget]
    python examples/compression_methods_study.py 0.6
"""

import sys

from repro.experiments import table3


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 0.6
    config = table3.Table3Config(
        model="resnet18_slim",
        image_size=10,
        n_train=256,
        n_test=128,
        num_classes=6,
        budget=budget,
        pretrain_epochs=5,
        compress_epochs=3,
        seed=0,
    )
    print(f"=== Compression method comparison at budget {budget:.0%} ===")
    print("(slim ResNet-18, synthetic data — orderings, not ImageNet "
          "absolute accuracies; see DESIGN.md §2)\n")
    print(table3.run(config).render())


if __name__ == "__main__":
    main()
